// Package netsim provides the simulated link layer of the farm: point-to-
// point links between ports, and learning 802.1Q VLAN switches. Frames are
// raw bytes in real wire format (see internal/netstack); delivery is
// scheduled on the shared discrete-event simulator.
package netsim

import (
	"fmt"
	"time"

	"gq/internal/obs"
	"gq/internal/sim"
)

// DefaultLinkLatency is the one-way delay applied when a link is created
// with zero latency. A small nonzero value keeps event ordering realistic
// (a reply can never overtake the request that provoked it).
const DefaultLinkLatency = 50 * time.Microsecond

// TrunkLatency is the modeled one-way latency of a trunk between
// simulation domains — subfarm uplinks, the external-shard bridges of the
// flat Internet segment, the management-plane crossings. It is defined as
// the coordinator's default lookahead so the physical wire delay and the
// synchronization window can never drift apart: a cross-domain link at
// TrunkLatency always satisfies the CrossFloor check below, and a
// coordinator built with DefaultLookahead never has to clamp it.
const TrunkLatency = sim.DefaultLookahead

// reorderHoldFactor is how many link latencies a reorder-selected frame is
// held back, letting frames sent after it overtake on the FIFO event queue.
const reorderHoldFactor = 3

// Impairment is a deterministic link fault profile. All probabilities draw
// from the simulator RNG and all extra delays run on the simulator clock,
// so a given seed replays the exact same fault sequence.
type Impairment struct {
	// Loss is the probability (0..1) that a transmitted frame is dropped.
	Loss float64
	// Jitter adds a uniform extra delay in [0, Jitter) to each delivery.
	Jitter time.Duration
	// Reorder is the probability a frame is held back long enough for
	// later frames to overtake it.
	Reorder float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Corrupt is the probability a single bit of the frame is flipped.
	Corrupt float64
}

// Port is one end of a link. The owner supplies a receive callback; Send
// delivers a frame to the peer port after the link latency.
type Port struct {
	Name string

	sim     *sim.Simulator
	recv    func(frame []byte)
	peer    *Port
	latency time.Duration
	up      bool

	// everRecv records whether a receiver was ever attached. Frames that
	// arrive before the first SetReceiver are wiring/setup noise (e.g. ARP
	// broadcast hitting a tap-only port) and are not counted as rx drops.
	everRecv bool

	// Loss is the probability (0..1) that a transmitted frame is silently
	// dropped. Used for failure-injection tests; Impair sets it too.
	Loss float64

	// Remaining impairment knobs (see Impairment). Set via Impair.
	jitter  time.Duration
	reorder float64
	dup     float64
	corrupt float64

	// Per-port counters stay plain fields: the farm creates a port per
	// inmate NIC plus every switch port, and per-port registry series would
	// explode metric cardinality for no operational gain.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64

	// Farm-wide drop/impairment totals shared by all ports of one
	// simulation. Loss-model drops and admin-down drops are distinct
	// series so injected impairment is distinguishable from a pulled
	// cable in the journal.
	lossDrops, downDrops, rxDrops     *obs.Counter
	dupFrames, corruptFrames, reorders *obs.Counter
}

// NewPort creates an unattached port. recv may be nil for send-only ports
// (e.g. a pure tap).
func NewPort(s *sim.Simulator, name string, recv func(frame []byte)) *Port {
	reg := s.Obs().Reg
	return &Port{
		Name: name, sim: s, recv: recv, up: true,
		everRecv:      recv != nil,
		lossDrops:     reg.Counter("netsim.port_loss_drops"),
		downDrops:     reg.Counter("netsim.port_down_drops"),
		rxDrops:       reg.Counter("netsim.port_rx_drops"),
		dupFrames:     reg.Counter("netsim.port_dup_frames"),
		corruptFrames: reg.Counter("netsim.port_corrupt_frames"),
		reorders:      reg.Counter("netsim.port_reorder_frames"),
	}
}

// SetReceiver replaces the receive callback, e.g. when a host NIC is
// re-bound after an inmate revert.
func (p *Port) SetReceiver(recv func(frame []byte)) {
	p.recv = recv
	if recv != nil {
		p.everRecv = true
	}
}

// Impair installs a fault profile on this port's transmit side. Passing the
// zero Impairment clears all impairment.
func (p *Port) Impair(im Impairment) {
	p.Loss = im.Loss
	p.jitter = im.Jitter
	p.reorder = im.Reorder
	p.dup = im.Dup
	p.corrupt = im.Corrupt
}

// Impaired reports whether any impairment knob is set.
func (p *Port) Impaired() bool {
	return p.Loss > 0 || p.jitter > 0 || p.reorder > 0 || p.dup > 0 || p.corrupt > 0
}

// Connect joins two ports with the given one-way latency (DefaultLinkLatency
// if zero). Connecting an already-connected port panics: topology is static
// within an experiment.
//
// A link whose endpoints live in different simulation domains is a
// domain-crossing boundary: frames ride the coordinator's deterministic
// merge. Its latency must be at least the coordinator's lookahead — the
// link *is* the modeled trunk/uplink wire whose delay makes conservative
// synchronization sound — so a shorter latency is a topology bug and
// panics here rather than silently desynchronizing replay.
func Connect(a, b *Port, latency time.Duration) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("netsim: port already connected (%s / %s)", a.Name, b.Name))
	}
	if latency <= 0 {
		latency = DefaultLinkLatency
	}
	if a.sim != b.sim {
		if !a.sim.SameWorld(b.sim) {
			panic(fmt.Sprintf("netsim: ports %s / %s belong to unrelated simulations", a.Name, b.Name))
		}
		if floor := a.sim.CrossFloor(b.sim); latency < floor {
			panic(fmt.Sprintf("netsim: cross-domain link %s <-> %s latency %v below coordinator lookahead %v",
				a.Name, b.Name, latency, floor))
		}
	}
	a.peer, b.peer = b, a
	a.latency, b.latency = latency, latency
}

// Connected reports whether the port has a peer.
func (p *Port) Connected() bool { return p.peer != nil }

// Peer returns the other end of the link, or nil if unconnected. Chaos
// schedules use it to impair or flap both directions of an inmate link.
func (p *Port) Peer() *Port { return p.peer }

// SetUp administratively enables or disables the port. A downed port drops
// traffic in both directions, emulating a pulled cable or a powered-off
// raw-iron inmate.
func (p *Port) SetUp(up bool) { p.up = up }

// Up reports the administrative state.
func (p *Port) Up() bool { return p.up }

// Send transmits a frame to the peer after the link latency. The frame is
// copied, so callers may reuse their buffer.
func (p *Port) Send(frame []byte) {
	if !p.admit(frame) {
		return
	}
	p.transmit(append([]byte(nil), frame...))
}

// SendOwned transmits a frame whose buffer the caller relinquishes: no
// defensive copy is made, so the caller must not touch the bytes again.
// This is the datapath fast path — a frame freshly marshalled (or patched
// in place) travels the wire without an extra allocation per hop.
func (p *Port) SendOwned(frame []byte) {
	if !p.admit(frame) {
		return
	}
	p.transmit(frame)
}

// admit runs the transmit-side bookkeeping and loss model, reporting
// whether the frame proceeds to delivery.
func (p *Port) admit(frame []byte) bool {
	if p.peer == nil || !p.up {
		p.downDrops.Inc()
		return false
	}
	p.TxFrames++
	p.TxBytes += uint64(len(frame))
	if p.Loss > 0 && p.sim.Rand().Float64() < p.Loss {
		p.lossDrops.Inc()
		return false
	}
	return true
}

// transmit applies the post-admit impairments (duplication, corruption,
// jitter, reordering) to the now callee-owned buffer and schedules delivery.
func (p *Port) transmit(buf []byte) {
	if p.dup > 0 && p.sim.Rand().Float64() < p.dup {
		p.dupFrames.Inc()
		p.deliver(append([]byte(nil), buf...), p.delay())
	}
	if p.corrupt > 0 && len(buf) > 0 && p.sim.Rand().Float64() < p.corrupt {
		bit := p.sim.Rand().Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << uint(bit%8)
		p.corruptFrames.Inc()
	}
	p.deliver(buf, p.delay())
}

// delay computes the delivery delay for one frame: base latency, plus
// uniform jitter, plus a hold-back when the frame is selected for
// reordering (the simulator's event queue is FIFO per timestamp, so only a
// larger delay lets later frames overtake).
func (p *Port) delay() time.Duration {
	d := p.latency
	if p.jitter > 0 {
		d += time.Duration(p.sim.Rand().Int63n(int64(p.jitter)))
	}
	if p.reorder > 0 && p.sim.Rand().Float64() < p.reorder {
		d += reorderHoldFactor * p.latency
		p.reorders.Inc()
	}
	return d
}

// deliver schedules the (now callee-owned) buffer at the peer. When the
// peer lives in another simulation domain the frame crosses via PostTo:
// buffer ownership transfers with the message (no copy), and all receive
// bookkeeping runs in the receiving domain. Connect guarantees the link
// latency is at least the coordinator's lookahead, so the clamp in PostTo
// never fires for frame delivery.
func (p *Port) deliver(buf []byte, after time.Duration) {
	peer := p.peer
	if peer.sim != p.sim {
		p.sim.PostTo(peer.sim, after, func() { peer.receive(buf) })
		return
	}
	p.sim.Schedule(after, func() { peer.receive(buf) })
}

// receive runs the receiving-side bookkeeping and hands the frame to the
// port's receive callback. Always runs on the owning domain's goroutine.
func (p *Port) receive(buf []byte) {
	if !p.up {
		p.rxDrops.Inc()
		return
	}
	if p.recv == nil {
		if p.everRecv {
			p.rxDrops.Inc()
		}
		return
	}
	p.RxFrames++
	p.RxBytes += uint64(len(buf))
	p.recv(buf)
}
