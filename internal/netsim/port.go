// Package netsim provides the simulated link layer of the farm: point-to-
// point links between ports, and learning 802.1Q VLAN switches. Frames are
// raw bytes in real wire format (see internal/netstack); delivery is
// scheduled on the shared discrete-event simulator.
package netsim

import (
	"fmt"
	"time"

	"gq/internal/obs"
	"gq/internal/sim"
)

// DefaultLinkLatency is the one-way delay applied when a link is created
// with zero latency. A small nonzero value keeps event ordering realistic
// (a reply can never overtake the request that provoked it).
const DefaultLinkLatency = 50 * time.Microsecond

// Port is one end of a link. The owner supplies a receive callback; Send
// delivers a frame to the peer port after the link latency.
type Port struct {
	Name string

	sim     *sim.Simulator
	recv    func(frame []byte)
	peer    *Port
	latency time.Duration
	up      bool

	// Loss is the probability (0..1) that a transmitted frame is silently
	// dropped. Used for failure-injection tests.
	Loss float64

	// Per-port counters stay plain fields: the farm creates a port per
	// inmate NIC plus every switch port, and per-port registry series would
	// explode metric cardinality for no operational gain.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64

	// txDrops/rxDrops are farm-wide drop totals shared by all ports of one
	// simulation (netsim.port_tx_drops / netsim.port_rx_drops).
	txDrops, rxDrops *obs.Counter
}

// NewPort creates an unattached port. recv may be nil for send-only ports
// (e.g. a pure tap).
func NewPort(s *sim.Simulator, name string, recv func(frame []byte)) *Port {
	reg := s.Obs().Reg
	return &Port{
		Name: name, sim: s, recv: recv, up: true,
		txDrops: reg.Counter("netsim.port_tx_drops"),
		rxDrops: reg.Counter("netsim.port_rx_drops"),
	}
}

// SetReceiver replaces the receive callback, e.g. when a host NIC is
// re-bound after an inmate revert.
func (p *Port) SetReceiver(recv func(frame []byte)) { p.recv = recv }

// Connect joins two ports with the given one-way latency (DefaultLinkLatency
// if zero). Connecting an already-connected port panics: topology is static
// within an experiment.
func Connect(a, b *Port, latency time.Duration) {
	if a.peer != nil || b.peer != nil {
		panic(fmt.Sprintf("netsim: port already connected (%s / %s)", a.Name, b.Name))
	}
	if latency <= 0 {
		latency = DefaultLinkLatency
	}
	a.peer, b.peer = b, a
	a.latency, b.latency = latency, latency
}

// Connected reports whether the port has a peer.
func (p *Port) Connected() bool { return p.peer != nil }

// SetUp administratively enables or disables the port. A downed port drops
// traffic in both directions, emulating a pulled cable or a powered-off
// raw-iron inmate.
func (p *Port) SetUp(up bool) { p.up = up }

// Up reports the administrative state.
func (p *Port) Up() bool { return p.up }

// Send transmits a frame to the peer after the link latency. The frame is
// copied, so callers may reuse their buffer.
func (p *Port) Send(frame []byte) {
	if !p.admit(frame) {
		return
	}
	p.deliver(append([]byte(nil), frame...))
}

// SendOwned transmits a frame whose buffer the caller relinquishes: no
// defensive copy is made, so the caller must not touch the bytes again.
// This is the datapath fast path — a frame freshly marshalled (or patched
// in place) travels the wire without an extra allocation per hop.
func (p *Port) SendOwned(frame []byte) {
	if !p.admit(frame) {
		return
	}
	p.deliver(frame)
}

// admit runs the transmit-side bookkeeping and loss model, reporting
// whether the frame proceeds to delivery.
func (p *Port) admit(frame []byte) bool {
	if p.peer == nil || !p.up {
		p.txDrops.Inc()
		return false
	}
	p.TxFrames++
	p.TxBytes += uint64(len(frame))
	if p.Loss > 0 && p.sim.Rand().Float64() < p.Loss {
		p.txDrops.Inc()
		return false
	}
	return true
}

// deliver schedules the (now callee-owned) buffer at the peer.
func (p *Port) deliver(buf []byte) {
	peer := p.peer
	p.sim.Schedule(p.latency, func() {
		if !peer.up || peer.recv == nil {
			peer.rxDrops.Inc()
			return
		}
		peer.RxFrames++
		peer.RxBytes += uint64(len(buf))
		peer.recv(buf)
	})
}
