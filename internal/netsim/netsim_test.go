package netsim

import (
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

func frameTo(dst, src netstack.MAC, vlan uint16, payload string) []byte {
	eth := netstack.Ethernet{Dst: dst, Src: src, VLAN: vlan, EtherType: netstack.EtherTypeIPv4}
	return append(eth.Marshal(nil), payload...)
}

func mac(n byte) netstack.MAC { return netstack.MAC{2, 0, 0, 0, 0, n} }

type collector struct {
	frames [][]byte
	port   *Port
}

func newCollector(s *sim.Simulator, name string) *collector {
	c := &collector{}
	c.port = NewPort(s, name, func(f []byte) { c.frames = append(c.frames, f) })
	return c
}

func (c *collector) payloads() []string {
	var out []string
	for _, f := range c.frames {
		var eth netstack.Ethernet
		rest, err := eth.Unmarshal(f)
		if err != nil {
			out = append(out, "ERR")
			continue
		}
		out = append(out, string(rest))
	}
	return out
}

func TestLinkDelivery(t *testing.T) {
	s := sim.New(1)
	a := NewPort(s, "a", nil)
	b := newCollector(s, "b")
	Connect(a, b.port, time.Millisecond)
	a.Send([]byte("hello"))
	s.Run()
	if s.Now() != time.Millisecond {
		t.Errorf("latency not applied: now=%v", s.Now())
	}
	if len(b.frames) != 1 || string(b.frames[0]) != "hello" {
		t.Fatalf("frames %q", b.frames)
	}
	if a.TxFrames != 1 || b.port.RxFrames != 1 || a.TxBytes != 5 {
		t.Errorf("counters tx=%d rx=%d txb=%d", a.TxFrames, b.port.RxFrames, a.TxBytes)
	}
}

func TestLinkDown(t *testing.T) {
	s := sim.New(1)
	a := NewPort(s, "a", nil)
	b := newCollector(s, "b")
	Connect(a, b.port, 0)
	b.port.SetUp(false)
	a.Send([]byte("x"))
	s.Run()
	if len(b.frames) != 0 {
		t.Error("downed port received frame")
	}
	a.SetUp(false)
	a.Send([]byte("y"))
	b.port.SetUp(true)
	s.Run()
	if len(b.frames) != 0 {
		t.Error("downed sender transmitted frame")
	}
}

func TestLinkLoss(t *testing.T) {
	s := sim.New(1)
	a := NewPort(s, "a", nil)
	b := newCollector(s, "b")
	Connect(a, b.port, 0)
	a.Loss = 0.5
	for i := 0; i < 1000; i++ {
		a.Send([]byte("x"))
	}
	s.Run()
	if n := len(b.frames); n < 400 || n > 600 {
		t.Errorf("50%% loss delivered %d/1000", n)
	}
}

// TestCrossDomainConnectBoundary pins the single-source-of-truth contract
// between wire latency and synchronization: a cross-domain link at exactly
// TrunkLatency (= the coordinator lookahead) is legal, one nanosecond less
// panics, and a frame over the trunk arrives after exactly TrunkLatency.
func TestCrossDomainConnectBoundary(t *testing.T) {
	root := sim.New(1)
	c := sim.NewCoordinator(root, TrunkLatency, 2)
	d := c.NewDomain()

	a := NewPort(root, "a", nil)
	var arrived time.Duration
	b := NewPort(d, "b", func(f []byte) { arrived = d.Now() })
	Connect(a, b, TrunkLatency) // exactly the floor: must not panic
	root.Schedule(0, func() { a.Send([]byte("x")) })
	c.RunUntil(5 * TrunkLatency)
	if arrived != TrunkLatency {
		t.Fatalf("trunk frame arrived at %v, want %v", arrived, TrunkLatency)
	}

	defer func() {
		if recover() == nil {
			t.Error("cross-domain link below TrunkLatency did not panic")
		}
	}()
	Connect(NewPort(root, "a2", nil), NewPort(d, "b2", nil), TrunkLatency-time.Nanosecond)
}

func TestDoubleConnectPanics(t *testing.T) {
	s := sim.New(1)
	a, b, c := NewPort(s, "a", nil), NewPort(s, "b", nil), NewPort(s, "c", nil)
	Connect(a, b, 0)
	defer func() {
		if recover() == nil {
			t.Error("double connect did not panic")
		}
	}()
	Connect(a, c, 0)
}

// buildSwitch wires n collectors to access ports on distinct VLANs given by
// vlans[i], returning them.
func buildSwitch(s *sim.Simulator, vlans []uint16) (*Switch, []*collector) {
	sw := NewSwitch(s, "sw0")
	var hosts []*collector
	for i, v := range vlans {
		h := newCollector(s, string(rune('a'+i)))
		Connect(sw.AddAccessPort(h.port.Name, v), h.port, 0)
		hosts = append(hosts, h)
	}
	return sw, hosts
}

func TestSwitchFloodWithinVLAN(t *testing.T) {
	s := sim.New(1)
	_, hosts := buildSwitch(s, []uint16{10, 10, 20})
	// Unknown unicast from host0 floods VLAN 10 only.
	hosts[0].port.Send(frameTo(mac(99), mac(1), 0, "v10"))
	s.Run()
	if len(hosts[1].frames) != 1 {
		t.Error("same-VLAN host did not receive flooded frame")
	}
	if len(hosts[2].frames) != 0 {
		t.Error("frame leaked across VLANs")
	}
	if len(hosts[0].frames) != 0 {
		t.Error("frame echoed to ingress port")
	}
}

func TestSwitchLearning(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildSwitch(s, []uint16{10, 10, 10})
	// host1 announces itself.
	hosts[1].port.Send(frameTo(netstack.BroadcastMAC, mac(2), 0, "hi"))
	s.Run()
	if sw.FDBSize() != 1 {
		t.Fatalf("FDB size %d", sw.FDBSize())
	}
	// Now host0 -> mac(2) should be forwarded, not flooded.
	flooded := sw.Flooded.Value()
	hosts[0].port.Send(frameTo(mac(2), mac(1), 0, "direct"))
	s.Run()
	if sw.Flooded.Value() != flooded {
		t.Error("known unicast was flooded")
	}
	if got := hosts[1].payloads(); len(got) != 1 || got[0] != "direct" {
		t.Fatalf("host1 got %q", got)
	}
	if len(hosts[2].frames) != 1 { // only the initial broadcast
		t.Errorf("host2 got %d frames, want 1", len(hosts[2].frames))
	}
}

func TestSwitchTrunkTagging(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildSwitch(s, []uint16{10, 20})
	trunk := newCollector(s, "trunk")
	Connect(sw.AddTrunkPort("uplink"), trunk.port, 0)

	// Broadcast from each access host should arrive on the trunk tagged.
	hosts[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 0, "from10"))
	hosts[1].port.Send(frameTo(netstack.BroadcastMAC, mac(2), 0, "from20"))
	s.Run()
	if len(trunk.frames) != 2 {
		t.Fatalf("trunk got %d frames", len(trunk.frames))
	}
	var vlans []uint16
	for _, f := range trunk.frames {
		var eth netstack.Ethernet
		if _, err := eth.Unmarshal(f); err != nil {
			t.Fatal(err)
		}
		vlans = append(vlans, eth.VLAN)
	}
	if vlans[0] != 10 || vlans[1] != 20 {
		t.Fatalf("trunk VLANs %v", vlans)
	}

	// Tagged frame from the trunk reaches only the matching access port,
	// untagged.
	trunk.port.Send(frameTo(netstack.BroadcastMAC, mac(9), 20, "to20"))
	s.Run()
	if len(hosts[0].frames) != 0 {
		t.Error("VLAN 20 frame reached VLAN 10 host")
	}
	if got := hosts[1].payloads(); len(got) != 1 || got[0] != "to20" {
		t.Fatalf("VLAN 20 host got %q", got)
	}
	var eth netstack.Ethernet
	if _, err := eth.Unmarshal(hosts[1].frames[0]); err != nil {
		t.Fatal(err)
	}
	if eth.VLAN != netstack.NoVLAN {
		t.Error("access egress not untagged")
	}
}

func TestSwitchDropsMismatchedTagging(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildSwitch(s, []uint16{10, 10})
	trunk := newCollector(s, "trunk")
	Connect(sw.AddTrunkPort("uplink"), trunk.port, 0)

	// Tagged frame into an access port: dropped.
	hosts[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 10, "tagged-on-access"))
	// Untagged frame into a trunk: dropped.
	trunk.port.Send(frameTo(netstack.BroadcastMAC, mac(2), 0, "untagged-on-trunk"))
	s.Run()
	if len(hosts[1].frames) != 0 || len(trunk.frames) != 0 {
		t.Error("mismatched tagging forwarded")
	}
	_ = sw
}

func TestSwitchForget(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildSwitch(s, []uint16{10, 20})
	hosts[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 0, "a"))
	hosts[1].port.Send(frameTo(netstack.BroadcastMAC, mac(2), 0, "b"))
	s.Run()
	if sw.FDBSize() != 2 {
		t.Fatalf("FDB %d", sw.FDBSize())
	}
	sw.Forget(10)
	if sw.FDBSize() != 1 {
		t.Fatalf("FDB after Forget %d", sw.FDBSize())
	}
}

func TestSwitchTap(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildSwitch(s, []uint16{10, 10})
	var tapped int
	sw.AddTap(func(frame []byte) {
		tapped++
		var eth netstack.Ethernet
		if _, err := eth.Unmarshal(frame); err != nil {
			t.Errorf("tap saw malformed frame: %v", err)
		} else if eth.VLAN != 10 {
			t.Errorf("tap frame not in internal tagged form (vlan=%d)", eth.VLAN)
		}
	})
	hosts[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 0, "x"))
	s.Run()
	if tapped != 1 {
		t.Errorf("tap saw %d frames", tapped)
	}
}

func TestSwitchMalformedFrameDropped(t *testing.T) {
	s := sim.New(1)
	_, hosts := buildSwitch(s, []uint16{10, 10})
	hosts[0].port.Send([]byte{1, 2, 3})
	s.Run()
	if len(hosts[1].frames) != 0 {
		t.Error("malformed frame forwarded")
	}
}

// VLAN isolation ablation (DESIGN.md §4): on a shared segment, traffic from
// one host reaches another; with per-inmate VLANs it cannot.
func TestVLANIsolationAblation(t *testing.T) {
	s := sim.New(1)
	// Shared segment: both on VLAN 10.
	_, shared := buildSwitch(s, []uint16{10, 10})
	shared[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 0, "worm"))
	s.Run()
	if len(shared[1].frames) != 1 {
		t.Fatal("shared segment should deliver")
	}
	// Isolated: distinct VLANs.
	_, iso := buildSwitch(s, []uint16{11, 12})
	iso[0].port.Send(frameTo(netstack.BroadcastMAC, mac(1), 0, "worm"))
	s.Run()
	if len(iso[1].frames) != 0 {
		t.Fatal("per-inmate VLANs must isolate")
	}
}

func TestSendCopiesSendOwnedDoesNot(t *testing.T) {
	s := sim.New(1)
	a := NewPort(s, "a", nil)
	b := newCollector(s, "b")
	Connect(a, b.port, time.Millisecond)

	buf := []byte("copied")
	a.Send(buf)
	buf[0] = 'X' // caller keeps ownership after Send: mutation must not leak
	s.Run()
	if string(b.frames[0]) != "copied" {
		t.Fatalf("Send did not copy: delivered %q", b.frames[0])
	}

	owned := []byte("owned!")
	a.SendOwned(owned)
	s.Run()
	if len(b.frames) != 2 || string(b.frames[1]) != "owned!" {
		t.Fatalf("SendOwned delivery %q", b.frames)
	}
	if &b.frames[1][0] != &owned[0] {
		t.Fatal("SendOwned copied the buffer; ownership transfer should be zero-copy")
	}
	if a.TxFrames != 2 || b.port.RxFrames != 2 {
		t.Errorf("counters tx=%d rx=%d", a.TxFrames, b.port.RxFrames)
	}
}

func TestSendOwnedRespectsLossAndDown(t *testing.T) {
	s := sim.New(1)
	a := NewPort(s, "a", nil)
	b := newCollector(s, "b")
	Connect(a, b.port, time.Millisecond)
	a.Loss = 1.0
	a.SendOwned([]byte("dropped"))
	s.Run()
	if len(b.frames) != 0 {
		t.Fatal("lossy SendOwned delivered")
	}
	a.Loss = 0
	a.SetUp(false)
	a.SendOwned([]byte("down"))
	s.Run()
	if len(b.frames) != 0 {
		t.Fatal("downed SendOwned delivered")
	}
}
