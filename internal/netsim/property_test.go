package netsim

import (
	"testing"
	"testing/quick"

	"gq/internal/netstack"
	"gq/internal/sim"
)

// Property: for arbitrary frame sequences across arbitrary VLAN
// assignments, (1) no frame is ever delivered back to its ingress host,
// and (2) no frame crosses VLANs.
func TestPropertyBridgeInvariants(t *testing.T) {
	f := func(srcs []uint8, dsts []uint8, vlanOf [4]uint8) bool {
		s := sim.New(3)
		sw := NewSwitch(s, "sw")
		const hosts = 4
		received := make([][]frameInfo, hosts)
		ports := make([]*Port, hosts)
		vlans := make([]uint16, hosts)
		for i := 0; i < hosts; i++ {
			i := i
			vlans[i] = uint16(vlanOf[i])%3 + 10 // VLANs 10..12
			ports[i] = NewPort(s, "h", func(frame []byte) {
				var eth netstack.Ethernet
				if _, err := eth.Unmarshal(frame); err == nil {
					received[i] = append(received[i], frameInfo{src: eth.Src})
				}
			})
			Connect(sw.AddAccessPort("p", vlans[i]), ports[i], 0)
		}
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		if n > 64 {
			n = 64
		}
		for k := 0; k < n; k++ {
			from := int(srcs[k]) % hosts
			to := int(dsts[k]) % hosts
			eth := netstack.Ethernet{
				Dst: mac(byte(to + 1)), Src: mac(byte(from + 1)),
				EtherType: netstack.EtherTypeIPv4,
			}
			if to == from {
				eth.Dst = netstack.BroadcastMAC
			}
			ports[from].Send(append(eth.Marshal(nil), byte(k)))
		}
		s.Run()
		for i := 0; i < hosts; i++ {
			for _, fi := range received[i] {
				// (1) never my own frame back.
				if fi.src == mac(byte(i+1)) {
					return false
				}
				// (2) sender must share my VLAN.
				srcIdx := int(fi.src[5]) - 1
				if srcIdx >= 0 && srcIdx < hosts && vlans[srcIdx] != vlans[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

type frameInfo struct{ src netstack.MAC }
