package netsim

import (
	"fmt"

	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/sim"
)

// PortMode selects how a switch port handles 802.1Q tags.
type PortMode int

const (
	// Access ports carry exactly one VLAN, untagged on the wire toward the
	// attached host. GQ attaches each inmate to an access port whose VLAN is
	// the inmate's unique ID.
	Access PortMode = iota
	// Trunk ports carry all VLANs, tagged. The gateway's uplink is a trunk.
	Trunk
)

// Tap observes frames traversing the switch, in their internal (tagged)
// representation, after the forwarding decision. Used for trace recording.
type Tap func(frame []byte)

type swPort struct {
	port *Port
	mode PortMode
	vlan uint16 // access VLAN; unused for trunks
}

type fdbKey struct {
	vlan uint16
	mac  netstack.MAC
}

// Switch is a learning 802.1Q VLAN bridge. It learns source MACs per VLAN,
// forwards known unicast to the learned port, floods unknown/broadcast
// within the VLAN, and never emits a frame on its ingress port. Its ability
// to learn the hosts present "reduces the configuration overhead required
// to bootstrap the inmate network" (§5.1).
type Switch struct {
	Name string

	sim   *sim.Simulator
	ports []*swPort
	fdb   map[fdbKey]*swPort
	taps  []Tap

	// Flooded and Forwarded count forwarding decisions, for tests and
	// scalability benchmarks; Drops counts malformed or mis-tagged ingress
	// frames the bridge silently discards.
	Flooded, Forwarded, Drops *obs.Counter
}

// NewSwitch creates an empty switch.
func NewSwitch(s *sim.Simulator, name string) *Switch {
	reg := s.Obs().Reg
	pfx := "netsim.switch." + name + "."
	return &Switch{
		Name: name, sim: s, fdb: make(map[fdbKey]*swPort),
		Flooded:   reg.Counter(pfx + "flooded"),
		Forwarded: reg.Counter(pfx + "forwarded"),
		Drops:     reg.Counter(pfx + "drops"),
	}
}

// AddAccessPort creates a switch port carrying a single untagged VLAN and
// returns the port the host side connects to.
func (sw *Switch) AddAccessPort(name string, vlan uint16) *Port {
	if vlan == netstack.NoVLAN || vlan > netstack.MaxVLAN {
		panic(fmt.Sprintf("netsim: invalid access VLAN %d on %s", vlan, name))
	}
	return sw.addPort(name, Access, vlan)
}

// AddTrunkPort creates a tagged port carrying all VLANs.
func (sw *Switch) AddTrunkPort(name string) *Port {
	return sw.addPort(name, Trunk, 0)
}

func (sw *Switch) addPort(name string, mode PortMode, vlan uint16) *Port {
	sp := &swPort{mode: mode, vlan: vlan}
	sp.port = NewPort(sw.sim, sw.Name+"/"+name, func(frame []byte) { sw.ingress(sp, frame) })
	sw.ports = append(sw.ports, sp)
	return sp.port
}

// AddTap registers a trace tap.
func (sw *Switch) AddTap(t Tap) { sw.taps = append(sw.taps, t) }

// FDBSize reports the number of learned (VLAN, MAC) entries.
func (sw *Switch) FDBSize() int { return len(sw.fdb) }

// Forget flushes learned entries for a VLAN, e.g. when an inmate is
// reverted and its NIC re-appears with fresh state.
func (sw *Switch) Forget(vlan uint16) {
	for k := range sw.fdb {
		if k.vlan == vlan {
			delete(sw.fdb, k)
		}
	}
}

// ingress normalises the frame to its tagged internal form, learns the
// source, and forwards.
func (sw *Switch) ingress(in *swPort, frame []byte) {
	var eth netstack.Ethernet
	if _, err := eth.Unmarshal(frame); err != nil {
		sw.Drops.Inc()
		return // malformed; bridges drop silently
	}
	switch in.mode {
	case Access:
		if eth.VLAN != netstack.NoVLAN {
			sw.Drops.Inc()
			return // tagged frame on access port: drop
		}
		frame = retag(frame, &eth, in.vlan)
		eth.VLAN = in.vlan
	case Trunk:
		if eth.VLAN == netstack.NoVLAN {
			sw.Drops.Inc()
			return // untagged frame on trunk: drop (no native VLAN)
		}
	}

	// Learn the source address on the ingress port.
	if !eth.Src.IsBroadcast() && !eth.Src.IsZero() {
		sw.fdb[fdbKey{eth.VLAN, eth.Src}] = in
	}

	for _, t := range sw.taps {
		t(frame)
	}

	if !eth.Dst.IsBroadcast() {
		if out, ok := sw.fdb[fdbKey{eth.VLAN, eth.Dst}]; ok {
			if out != in {
				sw.Forwarded.Inc()
				// Single consumer: the switch owns the frame (recv handed it
				// over) and is done with it, so ownership transfers onward.
				sw.egress(out, frame, &eth, true)
			}
			return
		}
	}
	// Unknown unicast or broadcast: flood within the VLAN. The frame is
	// shared across all egress ports, so each trunk copy is defensive.
	sw.Flooded.Inc()
	for _, out := range sw.ports {
		if out == in {
			continue
		}
		if out.mode == Access && out.vlan != eth.VLAN {
			continue
		}
		sw.egress(out, frame, &eth, false)
	}
}

// egress emits the frame on out. owned reports that the caller relinquishes
// the buffer; untagging for an access port always yields a fresh buffer, so
// that path transfers ownership regardless.
func (sw *Switch) egress(out *swPort, frame []byte, eth *netstack.Ethernet, owned bool) {
	if out.mode == Access {
		if owned && eth.VLAN != netstack.NoVLAN {
			// Sole consumer of a tagged frame: strip the tag in place
			// instead of re-marshalling into a fresh buffer.
			out.port.SendOwned(untagInPlace(frame))
			return
		}
		out.port.SendOwned(retag(frame, eth, netstack.NoVLAN))
		return
	}
	if owned {
		out.port.SendOwned(frame)
		return
	}
	out.port.Send(frame)
}

// untagInPlace strips a single 802.1Q tag without allocating: the MAC
// addresses shift right over the tag bytes and the frame is re-sliced.
func untagInPlace(frame []byte) []byte {
	copy(frame[4:16], frame[0:12])
	return frame[4:]
}

// retag rewrites the frame's VLAN tag (or removes it when vlan is NoVLAN).
// eth is the already-parsed header of frame.
func retag(frame []byte, eth *netstack.Ethernet, vlan uint16) []byte {
	payloadOff := 14
	if eth.VLAN != netstack.NoVLAN {
		payloadOff = 18
	}
	hdr := *eth
	hdr.VLAN = vlan
	out := hdr.Marshal(make([]byte, 0, len(frame)+4))
	return append(out, frame[payloadOff:]...)
}
