package sink

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/smtpx"
)

// SMTPConfig shapes the fidelity-adjustable SMTP sink (§6.3, §7.1).
type SMTPConfig struct {
	Port uint16
	// ControlPort receives EXPECT notifications from the containment
	// server (defaults to Port+1, UDP).
	ControlPort uint16
	// Banner is the static greeting used when grabbing is off or fails.
	Banner string
	// BannerGrab makes the sink connect out to the intended target and
	// relay its real greeting — the fidelity Waledac-class bots demand.
	BannerGrab bool
	// DropProb randomly drops (aborts) this fraction of connections,
	// which is why Fig. 7's REFLECTed flow counts exceed completed SMTP
	// sessions.
	DropProb float64
	// Strictness selects the protocol engine's tolerance (§7.1 protocol
	// violations).
	Strictness smtpx.Strictness
	// RcptReply, if set, overrides recipient acceptance — exploratory
	// containment uses this to expose specimens to specific SMTP error
	// conditions (§7.1).
	RcptReply func(addr string) *smtpx.Reply
	// DataReply, if set, overrides the end-of-DATA reply.
	DataReply func(env *smtpx.Envelope) *smtpx.Reply
	// MaxStoredEnvelopes caps retained message bodies (0 = keep all).
	MaxStoredEnvelopes int
}

// PerInmate aggregates sink activity for one source address.
type PerInmate struct {
	Sessions      uint64
	DataTransfers uint64
	Dropped       uint64
	HELOs         []string // distinct HELO strings observed
}

// SMTPSink is the farm's spam-harvesting endpoint.
type SMTPSink struct {
	h   *host.Host
	cfg SMTPConfig

	// Sessions counts accepted (non-dropped) connections; DataTransfers
	// completed DATA stages; DroppedConns probabilistically dropped ones.
	Sessions, DataTransfers, DroppedConns uint64

	// ByInmate aggregates per source address.
	ByInmate map[netstack.Addr]*PerInmate

	// Envelopes retains harvested spam (capped by MaxStoredEnvelopes).
	Envelopes []*smtpx.Envelope

	// expect maps an inmate address to the SMTP target it believed it was
	// contacting (set by containment-server EXPECT control messages).
	expect map[netstack.Addr]netstack.Addr
	// bannerCache holds grabbed greetings per real target.
	bannerCache map[netstack.Addr]string

	// GrabAttempts/GrabHits instrument the banner cache.
	GrabAttempts, GrabHits uint64

	// Registry mirrors of the session counters, named sink.<host>.*.
	sessions, dataTransfers, droppedConns *obs.Counter
}

// NewSMTPSink installs the sink on h.
func NewSMTPSink(h *host.Host, cfg SMTPConfig) (*SMTPSink, error) {
	if cfg.Port == 0 {
		cfg.Port = 25
	}
	if cfg.ControlPort == 0 {
		cfg.ControlPort = cfg.Port + 1
	}
	if cfg.Banner == "" {
		cfg.Banner = "220 mail.example.com ESMTP Postfix"
	}
	s := &SMTPSink{
		h: h, cfg: cfg,
		ByInmate:    make(map[netstack.Addr]*PerInmate),
		expect:      make(map[netstack.Addr]netstack.Addr),
		bannerCache: make(map[netstack.Addr]string),
	}
	reg := h.Sim().Obs().Reg
	s.sessions = reg.Counter("sink." + h.Name + ".sessions")
	s.dataTransfers = reg.Counter("sink." + h.Name + ".data_transfers")
	s.droppedConns = reg.Counter("sink." + h.Name + ".dropped_conns")
	if err := h.Listen(cfg.Port, s.accept); err != nil {
		return nil, err
	}
	if _, err := h.ListenUDP(cfg.ControlPort, s.control); err != nil {
		return nil, err
	}
	return s, nil
}

// Rebind reinstalls the sink's SMTP and control listeners after a
// supervised host reset. Harvested envelopes and counters carry over;
// EXPECT state does too — the containment server's control datagrams are
// per-flow, and flows stranded by the crash were failed closed anyway.
func (s *SMTPSink) Rebind() error {
	if err := s.h.Listen(s.cfg.Port, s.accept); err != nil {
		return err
	}
	_, err := s.h.ListenUDP(s.cfg.ControlPort, s.control)
	return err
}

// Expect records that flows from inmate are intended for target; exported
// for direct wiring in tests.
func (s *SMTPSink) Expect(inmate, target netstack.Addr) { s.expect[inmate] = target }

// control parses "EXPECT <inmate> <target>" datagrams from the containment
// server.
func (s *SMTPSink) control(src netstack.Addr, srcPort uint16, data []byte) {
	fields := strings.Fields(string(data))
	if len(fields) != 3 || fields[0] != "EXPECT" {
		return
	}
	inmate, err1 := netstack.ParseAddr(fields[1])
	target, err2 := netstack.ParseAddr(fields[2])
	if err1 != nil || err2 != nil {
		return
	}
	s.Expect(inmate, target)
}

func (s *SMTPSink) inmate(addr netstack.Addr) *PerInmate {
	pi, ok := s.ByInmate[addr]
	if !ok {
		pi = &PerInmate{}
		s.ByInmate[addr] = pi
	}
	return pi
}

func (s *SMTPSink) accept(c *host.Conn) {
	src, _ := c.RemoteAddr()
	if s.cfg.DropProb > 0 && s.h.Sim().Rand().Float64() < s.cfg.DropProb {
		s.DroppedConns++
		s.droppedConns.Inc()
		s.inmate(src).Dropped++
		c.Abort()
		return
	}
	s.Sessions++
	s.sessions.Inc()
	pi := s.inmate(src)
	pi.Sessions++

	eng := smtpx.NewEngine(s.cfg.Strictness,
		func(line string) { c.Write([]byte(line + "\r\n")) },
		func() { c.Close() })
	eng.OnHelo = func(verb, arg string) {
		for _, h := range pi.HELOs {
			if h == arg {
				return
			}
		}
		pi.HELOs = append(pi.HELOs, arg)
	}
	if s.cfg.RcptReply != nil {
		eng.OnRcpt = s.cfg.RcptReply
	}
	eng.OnMessage = func(env *smtpx.Envelope) *smtpx.Reply {
		s.DataTransfers++
		s.dataTransfers.Inc()
		pi.DataTransfers++
		if s.cfg.MaxStoredEnvelopes == 0 || len(s.Envelopes) < s.cfg.MaxStoredEnvelopes {
			s.Envelopes = append(s.Envelopes, env)
		}
		if s.cfg.DataReply != nil {
			return s.cfg.DataReply(env)
		}
		return nil
	}
	c.OnData = func(d []byte) { eng.Feed(d) }
	c.OnPeerClose = func() { c.Close() }

	s.greet(c, eng, src)
}

// greet delivers the banner, grabbing it from the intended target first
// when configured ("SMTP requests to a hitherto unseen host now caused the
// sink to actually connect out to the target SMTP server and obtain the
// greeting message", §7.1).
func (s *SMTPSink) greet(c *host.Conn, eng *smtpx.Engine, src netstack.Addr) {
	if !s.cfg.BannerGrab {
		eng.Greet(s.cfg.Banner)
		return
	}
	target, known := s.expect[src]
	if !known {
		eng.Greet(s.cfg.Banner)
		return
	}
	if banner, cached := s.bannerCache[target]; cached {
		s.GrabHits++
		eng.Greet(banner)
		return
	}
	s.GrabAttempts++
	grab := s.h.Dial(target, 25)
	done := false
	finish := func(banner string) {
		if done {
			return
		}
		done = true
		grab.Close()
		s.bannerCache[target] = banner
		eng.Greet(banner)
	}
	var buf []byte
	grab.OnData = func(d []byte) {
		buf = append(buf, d...)
		if nl := strings.IndexByte(string(buf), '\n'); nl >= 0 {
			finish(strings.TrimRight(string(buf[:nl]), "\r"))
		}
	}
	grab.OnClose = func(err error) {
		if !done {
			finish(s.cfg.Banner) // target unreachable: fall back
		}
	}
	s.h.Sim().Schedule(5*time.Second, func() { finish(s.cfg.Banner) })
}

// String summarises activity.
func (s *SMTPSink) String() string {
	return fmt.Sprintf("sink.SMTPSink{%d sessions, %d DATA, %d dropped}",
		s.Sessions, s.DataTransfers, s.DroppedConns)
}

// HTTPSink answers every request with an empty 200 and counts hits; click
// traffic is steered here so fraudulent clicks never reach real ad
// networks.
type HTTPSink struct {
	Hits uint64
	URLs []string

	h    *host.Host
	port uint16
	hits *obs.Counter
}

// NewHTTPSink installs the sink on h at port.
func NewHTTPSink(h *host.Host, port uint16) (*HTTPSink, error) {
	s := &HTTPSink{
		h: h, port: port,
		hits: h.Sim().Obs().Reg.Counter("sink." + h.Name + ".http_hits"),
	}
	if err := h.Listen(port, s.accept); err != nil {
		return nil, err
	}
	return s, nil
}

// Rebind reinstalls the sink's listener after a supervised host reset.
func (s *HTTPSink) Rebind() error {
	return s.h.Listen(s.port, s.accept)
}

func (s *HTTPSink) accept(c *host.Conn) {
	var buf []byte
	c.OnData = func(d []byte) {
		buf = append(buf, d...)
		for {
			nl := strings.Index(string(buf), "\r\n\r\n")
			if nl < 0 {
				return
			}
			head := string(buf[:nl])
			buf = buf[nl+4:]
			line := head
			if i := strings.Index(head, "\r\n"); i >= 0 {
				line = head[:i]
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				s.Hits++
				s.hits.Inc()
				s.URLs = append(s.URLs, fields[1])
			}
			c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"))
		}
	}
	c.OnPeerClose = func() { c.Close() }
}
