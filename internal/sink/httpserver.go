package sink

import (
	"net"
	"net/http"
	"sync"

	"gq/internal/host"
	"gq/internal/hostnet"
	"gq/internal/obs"
	"gq/internal/sim"
)

// HTTPServerSink is the HTTP click sink served by an unmodified stdlib
// http.Server running over the hostnet blocking facade. Functionally it
// matches HTTPSink — empty 200 for every request, hit and URL counters —
// but the protocol engine is net/http itself, so malformed requests,
// pipelining, chunked bodies and keep-alive all behave exactly like a
// production server a specimen would click against.
//
// The server's handler goroutines are detached (DESIGN.md §3g): the
// simulation must be driven with Simulator.Pump while this sink is live,
// and the habitat cannot be a sharded domain. Farms that need
// byte-deterministic journals keep the callback HTTPSink.
type HTTPServerSink struct {
	// mu guards hits/urls: handlers run on net/http's own goroutines.
	mu   sync.Mutex
	hits uint64
	urls []string

	hitsCtr *obs.Counter
	srv     *http.Server
	ln      net.Listener
}

// NewHTTPServerSink installs the sink on h at port and starts its accept
// loop. The simulator need not be running yet: setup completes in proc
// context, and the accept loop blocks until the first Pump.
func NewHTTPServerSink(h *host.Host, port uint16) (*HTTPServerSink, error) {
	s := &HTTPServerSink{
		hitsCtr: h.Sim().Obs().Reg.Counter("sink." + h.Name + ".http_hits"),
	}
	stack := hostnet.New(h)
	var ln net.Listener
	var err error
	// Listen through a proc so it runs in loop context even though the
	// caller is an ordinary goroutine with the simulator idle.
	h.Sim().Go(h.Name+"-http-listen", func(p *sim.Proc) {
		ln, err = stack.Listen(port)
	})
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go s.srv.Serve(ln)
	return s, nil
}

func (s *HTTPServerSink) handle(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.hits++
	s.urls = append(s.urls, r.URL.String())
	s.mu.Unlock()
	s.hitsCtr.Inc()
	w.Header().Set("Content-Length", "0")
	w.WriteHeader(http.StatusOK)
}

// Hits returns the number of requests answered.
func (s *HTTPServerSink) Hits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// URLs returns a copy of the request URLs seen so far.
func (s *HTTPServerSink) URLs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.urls...)
}

// Close stops the server and its listener. Call it while the simulation
// is still being pumped: teardown blocks on injected facade operations.
func (s *HTTPServerSink) Close() error { return s.srv.Close() }
