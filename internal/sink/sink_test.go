package sink

import (
	"strings"
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
	"gq/internal/smtpx"
)

// net3 wires a bot, a sink host, and a "real MX" on one segment.
func net3(t *testing.T, seed int64) (*sim.Simulator, *host.Host, *host.Host, *host.Host) {
	t.Helper()
	s := sim.New(seed)
	sw := netsim.NewSwitch(s, "sw")
	mk := func(name string, n byte, addr string) *host.Host {
		h := host.New(s, name, netstack.MAC{2, 0, 0, 0, 0, n})
		netsim.Connect(sw.AddAccessPort(name, 10), h.NIC(), 0)
		h.ConfigureStatic(netstack.MustParseAddr(addr), 8, 0)
		return h
	}
	return s, mk("bot", 1, "10.0.0.1"), mk("sink", 2, "10.0.0.2"), mk("mx", 3, "10.9.9.9")
}

func TestCatchAllAcceptsEverything(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 1)
	ca := NewCatchAll(sinkHost)
	ports := []uint16{21, 25, 80, 443, 6667, 31337}
	for _, p := range ports {
		p := p
		c := bot.Dial(sinkHost.Addr(), p)
		c.OnConnect = func() { c.Write([]byte("probe-" + netstack.ProtoName(uint8(p%250)))) }
	}
	sock, _ := bot.ListenUDP(4000, nil)
	sock.SendTo(sinkHost.Addr(), 1900, []byte("ssdp-ish"))
	s.RunFor(time.Minute)

	if ca.TCPConns != uint64(len(ports)) {
		t.Fatalf("TCP conns %d, want %d", ca.TCPConns, len(ports))
	}
	if ca.UDPDatagrams != 1 {
		t.Fatalf("UDP datagrams %d", ca.UDPDatagrams)
	}
	for _, p := range ports {
		if ca.ByPort[p] != 1 {
			t.Errorf("port %d count %d", p, ca.ByPort[p])
		}
	}
}

func TestCatchAllLogsFirstBytes(t *testing.T) {
	// The Storm "unexpected visitors" shape: an FTP job shows up at the
	// sink and is identifiable from its first bytes.
	s, bot, sinkHost, _ := net3(t, 2)
	ca := NewCatchAll(sinkHost)
	c := bot.Dial(sinkHost.Addr(), 21)
	c.OnConnect = func() {
		c.Write([]byte("USER webadmin\r\nPASS hunter2\r\nRETR index.html\r\n"))
	}
	s.RunFor(time.Minute)
	hits := ca.FlowsMatching("RETR index.html")
	if len(hits) != 1 || hits[0].Port != 21 {
		t.Fatalf("iframe-injection job not identifiable: %+v", ca.Flows)
	}
}

func TestSMTPSinkHarvestsSpam(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 3)
	sk, err := NewSMTPSink(sinkHost, SMTPConfig{Port: 25, Strictness: smtpx.Lenient})
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	smtpx.Send(bot, sinkHost.Addr(), 25, smtpx.ClientConfig{
		Helo: "spambot",
		Messages: []smtpx.Message{
			{From: "a@spam.biz", Rcpts: []string{"v1@x.com"}, Data: []byte("pills")},
			{From: "a@spam.biz", Rcpts: []string{"v2@x.com"}, Data: []byte("watches")},
		},
		OnDone: func(n int, err error) { delivered = n },
	})
	s.RunFor(time.Minute)
	if delivered != 2 || sk.Sessions != 1 || sk.DataTransfers != 2 {
		t.Fatalf("delivered=%d sessions=%d data=%d", delivered, sk.Sessions, sk.DataTransfers)
	}
	pi := sk.ByInmate[bot.Addr()]
	if pi == nil || pi.Sessions != 1 || pi.DataTransfers != 2 {
		t.Fatalf("per-inmate %+v", pi)
	}
	if len(pi.HELOs) != 1 || pi.HELOs[0] != "spambot" {
		t.Fatalf("HELOs %v", pi.HELOs)
	}
	if len(sk.Envelopes) != 2 || !strings.Contains(string(sk.Envelopes[0].Data), "pills") {
		t.Fatalf("envelopes %+v", sk.Envelopes)
	}
}

func TestSMTPSinkProbabilisticDrop(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 4)
	sk, _ := NewSMTPSink(sinkHost, SMTPConfig{Port: 25, DropProb: 0.35, Strictness: smtpx.Lenient})
	const tries = 400
	for i := 0; i < tries; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Second, func() {
			smtpx.Send(bot, sinkHost.Addr(), 25, smtpx.ClientConfig{
				Helo:     "bot",
				Messages: []smtpx.Message{{From: "a@b.c", Rcpts: []string{"v@x.com"}, Data: []byte("m")}},
			})
		})
	}
	s.RunFor(tries*time.Second + time.Minute)
	total := sk.Sessions + sk.DroppedConns
	if total != tries {
		t.Fatalf("accounted %d of %d connections", total, tries)
	}
	// The Fig. 7 shape: flows (tries) exceed completed sessions.
	frac := float64(sk.DroppedConns) / float64(tries)
	if frac < 0.25 || frac > 0.45 {
		t.Fatalf("drop fraction %.2f, configured 0.35", frac)
	}
	if sk.DataTransfers != sk.Sessions {
		t.Fatalf("data=%d sessions=%d (one message per surviving session)", sk.DataTransfers, sk.Sessions)
	}
}

func TestSMTPSinkBannerGrab(t *testing.T) {
	s, bot, sinkHost, mx := net3(t, 5)
	// The real MX greets with a distinctive banner.
	realBanner := "220 mx.google.com ESMTP gsmtp"
	srv := &smtpx.Server{Banner: realBanner, Strictness: smtpx.Lenient}
	if err := srv.Serve(mx, 25); err != nil {
		t.Fatal(err)
	}
	sk, _ := NewSMTPSink(sinkHost, SMTPConfig{Port: 2526, BannerGrab: true, Strictness: smtpx.Lenient})
	sk.Expect(bot.Addr(), mx.Addr())

	var banner string
	c := bot.Dial(sinkHost.Addr(), 2526)
	c.OnData = func(d []byte) {
		if banner == "" {
			banner = strings.TrimSpace(string(d))
		}
	}
	s.RunFor(time.Minute)
	if banner != realBanner {
		t.Fatalf("banner %q, want grabbed %q", banner, realBanner)
	}
	if sk.GrabAttempts != 1 {
		t.Fatalf("grab attempts %d", sk.GrabAttempts)
	}

	// Second connection: served from cache.
	var banner2 string
	c2 := bot.Dial(sinkHost.Addr(), 2526)
	c2.OnData = func(d []byte) {
		if banner2 == "" {
			banner2 = strings.TrimSpace(string(d))
		}
	}
	s.RunFor(time.Minute)
	if banner2 != realBanner || sk.GrabHits != 1 || sk.GrabAttempts != 1 {
		t.Fatalf("cache miss: banner2=%q hits=%d attempts=%d", banner2, sk.GrabHits, sk.GrabAttempts)
	}
}

func TestSMTPSinkBannerGrabFallback(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 6)
	sk, _ := NewSMTPSink(sinkHost, SMTPConfig{
		Port: 2526, Banner: "220 fallback", BannerGrab: true, Strictness: smtpx.Lenient,
	})
	// Expected target does not exist.
	sk.Expect(bot.Addr(), netstack.MustParseAddr("10.8.8.8"))
	var banner string
	c := bot.Dial(sinkHost.Addr(), 2526)
	c.OnData = func(d []byte) {
		if banner == "" {
			banner = strings.TrimSpace(string(d))
		}
	}
	s.RunFor(time.Minute)
	if banner != "220 fallback" {
		t.Fatalf("banner %q, want fallback", banner)
	}
}

func TestSMTPSinkUnknownTargetUsesStaticBanner(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 7)
	sk, _ := NewSMTPSink(sinkHost, SMTPConfig{
		Port: 2526, Banner: "220 static", BannerGrab: true, Strictness: smtpx.Lenient,
	})
	_ = sk
	var banner string
	c := bot.Dial(sinkHost.Addr(), 2526)
	c.OnData = func(d []byte) {
		if banner == "" {
			banner = strings.TrimSpace(string(d))
		}
	}
	s.RunFor(time.Minute)
	if banner != "220 static" {
		t.Fatalf("banner %q", banner)
	}
}

func TestSMTPSinkControlMessage(t *testing.T) {
	s, bot, sinkHost, mx := net3(t, 8)
	srv := &smtpx.Server{Banner: "220 grabbed.example", Strictness: smtpx.Lenient}
	srv.Serve(mx, 25)
	sk, _ := NewSMTPSink(sinkHost, SMTPConfig{Port: 2526, BannerGrab: true, Strictness: smtpx.Lenient})
	_ = sk
	// A "containment server" (here: the mx host doubling as CS) sends the
	// EXPECT control datagram.
	sock, _ := mx.ListenUDP(0, nil)
	sock.SendTo(sinkHost.Addr(), 2527, []byte("EXPECT "+bot.Addr().String()+" "+mx.Addr().String()))
	s.RunFor(time.Second)

	var banner string
	c := bot.Dial(sinkHost.Addr(), 2526)
	c.OnData = func(d []byte) {
		if banner == "" {
			banner = strings.TrimSpace(string(d))
		}
	}
	s.RunFor(time.Minute)
	if banner != "220 grabbed.example" {
		t.Fatalf("banner %q; EXPECT control message not honoured", banner)
	}
}

func TestSMTPSinkExploratoryErrorCodes(t *testing.T) {
	// §7.1 exploratory containment: expose the specimen to specific SMTP
	// error conditions.
	s, bot, sinkHost, _ := net3(t, 9)
	NewSMTPSink(sinkHost, SMTPConfig{
		Port: 25, Strictness: smtpx.Lenient,
		RcptReply: func(addr string) *smtpx.Reply {
			if strings.HasSuffix(addr, "@full.example") {
				return &smtpx.Reply{Code: 452, Text: "mailbox full"}
			}
			return nil
		},
	})
	var codes []int
	smtpx.Send(bot, sinkHost.Addr(), 25, smtpx.ClientConfig{
		Helo: "bot",
		Messages: []smtpx.Message{{
			From: "a@b.c", Rcpts: []string{"v@full.example", "v@ok.example"}, Data: []byte("m"),
		}},
		OnDelivered: func(idx, code int) { codes = append(codes, code) },
	})
	s.RunFor(time.Minute)
	if len(codes) != 1 || codes[0] != 250 {
		t.Fatalf("codes %v", codes)
	}
}

func TestHTTPSink(t *testing.T) {
	s, bot, sinkHost, _ := net3(t, 10)
	hs, err := NewHTTPSink(sinkHost, 80)
	if err != nil {
		t.Fatal(err)
	}
	c := bot.Dial(sinkHost.Addr(), 80)
	c.OnConnect = func() {
		c.Write([]byte("GET /click?ad=1 HTTP/1.1\r\nHost: ads.example\r\n\r\n"))
		c.Write([]byte("GET /click?ad=2 HTTP/1.1\r\nHost: ads.example\r\n\r\n"))
	}
	s.RunFor(time.Minute)
	if hs.Hits != 2 || len(hs.URLs) != 2 || hs.URLs[1] != "/click?ad=2" {
		t.Fatalf("hits=%d urls=%v", hs.Hits, hs.URLs)
	}
}
