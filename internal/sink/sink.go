// Package sink implements GQ's sink servers (§6.3): the catch-all server
// that accepts arbitrary traffic without meaningfully responding to it, the
// fidelity-adjustable SMTP sink (static banner, banner grabbing from the
// actual target, probabilistic connection drop, strict or lenient protocol
// engine), and an HTTP sink for click traffic.
package sink

import (
	"fmt"
	"strings"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/obs"
)

// FlowLog records one contained connection's first bytes — enough to
// recognise, say, a Storm proxy's unexpected FTP iframe-injection jobs.
type FlowLog struct {
	Src     netstack.Addr
	SrcPort uint16
	Port    uint16 // destination port the flow believed it reached
	First   string // first payload bytes (capped)
}

const firstBytesCap = 256

// CatchAll accepts arbitrary TCP and UDP traffic on every port. It is the
// simplest sink (the paper's needed "a mere 100 lines"): connections are
// accepted, payload is swallowed and logged, nothing meaningful comes back.
type CatchAll struct {
	h *host.Host

	// Flows logs each connection/datagram source with its first bytes.
	Flows []FlowLog
	// ByPort counts flows per destination port.
	ByPort map[uint16]int
	// TCPConns and UDPDatagrams count totals. They are mirrored into the
	// registry as sink.<host>.tcp_conns / sink.<host>.udp_datagrams so a
	// metrics snapshot sees sink activity without reaching into each sink.
	TCPConns, UDPDatagrams uint64

	tcpConns, udpDatagrams *obs.Counter
}

// NewCatchAll installs the catch-all sink on h.
func NewCatchAll(h *host.Host) *CatchAll {
	s := &CatchAll{h: h, ByPort: make(map[uint16]int)}
	reg := h.Sim().Obs().Reg
	s.tcpConns = reg.Counter("sink." + h.Name + ".tcp_conns")
	s.udpDatagrams = reg.Counter("sink." + h.Name + ".udp_datagrams")
	s.install()
	return s
}

// Rebind reinstalls the sink's listeners after a supervised host reset.
// Counters and logs carry over — the sink process "restarted", its
// measurement record did not.
func (s *CatchAll) Rebind() error {
	s.install()
	return nil
}

func (s *CatchAll) install() {
	h := s.h
	h.ListenAny(func(c *host.Conn) {
		s.TCPConns++
		s.tcpConns.Inc()
		src, sport := c.RemoteAddr()
		entry := &FlowLog{Src: src, SrcPort: sport, Port: c.LocalPort()}
		s.Flows = append(s.Flows, *entry)
		idx := len(s.Flows) - 1
		s.ByPort[c.LocalPort()]++
		c.OnData = func(d []byte) {
			if len(s.Flows[idx].First) < firstBytesCap {
				room := firstBytesCap - len(s.Flows[idx].First)
				if room > len(d) {
					room = len(d)
				}
				s.Flows[idx].First += string(d[:room])
			}
		}
		c.OnPeerClose = func() { c.Close() }
	})
	h.ListenUDPAny(func(dstPort uint16, src netstack.Addr, srcPort uint16, data []byte) {
		s.UDPDatagrams++
		s.udpDatagrams.Inc()
		first := string(data)
		if len(first) > firstBytesCap {
			first = first[:firstBytesCap]
		}
		s.Flows = append(s.Flows, FlowLog{Src: src, SrcPort: srcPort, Port: dstPort, First: first})
		s.ByPort[dstPort]++
	})
}

// FlowsMatching returns logged flows whose first bytes contain substr.
func (s *CatchAll) FlowsMatching(substr string) []FlowLog {
	var out []FlowLog
	for _, f := range s.Flows {
		if strings.Contains(f.First, substr) {
			out = append(out, f)
		}
	}
	return out
}

// String summarises the sink.
func (s *CatchAll) String() string {
	return fmt.Sprintf("sink.CatchAll{%d tcp, %d udp, %d ports}",
		s.TCPConns, s.UDPDatagrams, len(s.ByPort))
}
