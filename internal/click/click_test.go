package click

import (
	"strings"
	"testing"

	"gq/internal/netstack"
)

func pkt(payload string) *netstack.Packet {
	return &netstack.Packet{
		Eth:     netstack.Ethernet{EtherType: netstack.EtherTypeIPv4},
		IP:      &netstack.IPv4{TTL: 64, Protocol: netstack.ProtoUDP, Src: 1, Dst: 2},
		UDP:     &netstack.UDP{SrcPort: 1, DstPort: 2},
		Payload: []byte(payload),
	}
}

func TestPipeline(t *testing.T) {
	g := NewGraph("test")
	in := NewCounter("in")
	var got []string
	sink := NewFunc("sink", func(port int, p *netstack.Packet) { got = append(got, string(p.Payload)) })
	g.Add(in)
	g.Add(sink)
	g.Connect(in, 0, sink, 0)
	in.Push(0, pkt("a"))
	in.Push(0, pkt("bb"))
	if in.Packets != 2 || in.Bytes != 3 {
		t.Errorf("counter %d/%d", in.Packets, in.Bytes)
	}
	if len(got) != 2 || got[0] != "a" {
		t.Errorf("sink %v", got)
	}
}

func TestClassifierRouting(t *testing.T) {
	g := NewGraph("test")
	cl := NewClassifier("cl", func(p *netstack.Packet) int {
		switch string(p.Payload) {
		case "tcp":
			return 0
		case "udp":
			return 1
		default:
			return -1
		}
	})
	c0, c1 := NewCounter("c0"), NewCounter("c1")
	g.Add(cl)
	g.Add(c0)
	g.Add(c1)
	g.Connect(cl, 0, c0, 0)
	g.Connect(cl, 1, c1, 0)
	cl.Push(0, pkt("tcp"))
	cl.Push(0, pkt("udp"))
	cl.Push(0, pkt("junk"))
	if c0.Packets != 1 || c1.Packets != 1 {
		t.Errorf("routing %d/%d", c0.Packets, c1.Packets)
	}
}

func TestTeeClones(t *testing.T) {
	g := NewGraph("test")
	src := NewCounter("src")
	var a, b *netstack.Packet
	fa := NewFunc("a", func(_ int, p *netstack.Packet) { a = p })
	fb := NewFunc("b", func(_ int, p *netstack.Packet) { b = p })
	g.Add(src)
	g.Add(fa)
	g.Add(fb)
	g.Connect(src, 0, fa, 0)
	g.Connect(src, 0, fb, 0)
	src.Push(0, pkt("x"))
	if a == nil || b == nil {
		t.Fatal("tee did not deliver to both")
	}
	if a == b {
		t.Fatal("tee consumers share a packet")
	}
	a.Payload[0] = 'y'
	if b.Payload[0] != 'x' {
		t.Fatal("tee clone aliases buffer")
	}
}

func TestTapObservesAndForwards(t *testing.T) {
	g := NewGraph("test")
	var seen int
	tap := NewTap("tap", func(p *netstack.Packet) { seen++ })
	c := NewCounter("c")
	g.Add(tap)
	g.Add(c)
	g.Connect(tap, 0, c, 0)
	tap.Push(0, pkt("x"))
	if seen != 1 || c.Packets != 1 {
		t.Errorf("seen=%d forwarded=%d", seen, c.Packets)
	}
}

func TestDiscard(t *testing.T) {
	d := NewDiscard("d")
	d.Push(0, pkt("x"))
	if d.Dropped != 1 {
		t.Error("discard did not count")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	g := NewGraph("test")
	g.Add(NewCounter("x"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate name accepted")
		}
	}()
	g.Add(NewDiscard("x"))
}

func TestConnectUnknownElementPanics(t *testing.T) {
	g := NewGraph("test")
	a := NewCounter("a")
	b := NewCounter("b")
	g.Add(a)
	defer func() {
		if recover() == nil {
			t.Error("foreign element accepted")
		}
	}()
	g.Connect(a, 0, b, 0)
}

func TestConfigRendering(t *testing.T) {
	g := NewGraph("subfarm-botfarm")
	a, b := NewCounter("rx"), NewDiscard("drop")
	g.Add(a)
	g.Add(b)
	g.Connect(a, 0, b, 0)
	cfg := g.Config()
	for _, want := range []string{"graph subfarm-botfarm", "rx ::", "drop ::", "rx[0] -> [0]drop"} {
		if !strings.Contains(cfg, want) {
			t.Errorf("config missing %q:\n%s", want, cfg)
		}
	}
	if g.Lookup("rx") != a || g.Lookup("nope") != nil {
		t.Error("Lookup wrong")
	}
}
