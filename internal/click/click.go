// Package click is a compact homage to the Click modular router, which GQ
// uses for the gateway's packet routers (§6.1). Packet-processing logic is
// composed from named elements with numbered push ports; a Graph records
// the composition, separating the invariant, reusable forwarding elements
// (shared across all subfarms) from each subfarm's small configuration
// module.
package click

import (
	"fmt"
	"sort"
	"strings"

	"gq/internal/netstack"
)

// Element processes packets pushed to its numbered input ports.
type Element interface {
	// Name identifies the element instance within its graph.
	Name() string
	// Push delivers a packet to input port. Elements may mutate the packet
	// and push it onward synchronously.
	Push(port int, p *netstack.Packet)
}

type edge struct {
	to     Element
	toPort int
}

// Base provides output-port wiring for element implementations; embed it
// and call Out to emit packets downstream.
type Base struct {
	name string
	outs map[int][]edge
}

// NewBase names an element.
func NewBase(name string) Base { return Base{name: name} }

// Name implements Element.
func (b *Base) Name() string { return b.name }

// Out pushes p to every edge connected to output port. With multiple edges
// the packet is cloned for each extra consumer (Tee semantics).
func (b *Base) Out(port int, p *netstack.Packet) {
	edges := b.outs[port]
	for i, e := range edges {
		q := p
		if i < len(edges)-1 {
			q = p.Clone()
		}
		e.to.Push(e.toPort, q)
	}
}

// connect wires an output port; used by Graph.
func (b *Base) connect(port int, to Element, toPort int) {
	if b.outs == nil {
		b.outs = make(map[int][]edge)
	}
	b.outs[port] = append(b.outs[port], edge{to: to, toPort: toPort})
}

// wirer is the internal interface Graph uses to connect elements.
type wirer interface {
	Element
	connect(port int, to Element, toPort int)
}

// Graph is a named composition of elements.
type Graph struct {
	Name     string
	elements []Element
	byName   map[string]Element
	wires    []string
}

// NewGraph creates an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]Element)}
}

// Add registers an element; duplicate names panic (configs are static).
func (g *Graph) Add(e Element) Element {
	if _, dup := g.byName[e.Name()]; dup {
		panic(fmt.Sprintf("click: duplicate element %q in graph %s", e.Name(), g.Name))
	}
	g.elements = append(g.elements, e)
	g.byName[e.Name()] = e
	return e
}

// Connect wires from[outPort] -> to[inPort]. Both elements must already be
// in the graph, and from must embed Base.
func (g *Graph) Connect(from Element, outPort int, to Element, inPort int) {
	w, ok := from.(wirer)
	if !ok {
		panic(fmt.Sprintf("click: element %q does not support output wiring", from.Name()))
	}
	if g.byName[from.Name()] != from || g.byName[to.Name()] != to {
		panic("click: connecting elements not in graph")
	}
	w.connect(outPort, to, inPort)
	g.wires = append(g.wires, fmt.Sprintf("%s[%d] -> [%d]%s", from.Name(), outPort, inPort, to.Name()))
}

// Lookup returns a named element, or nil.
func (g *Graph) Lookup(name string) Element { return g.byName[name] }

// Config renders the composition in a Click-config-like textual form, for
// inspection and tests.
func (g *Graph) Config() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// graph %s\n", g.Name)
	names := make([]string, 0, len(g.elements))
	for _, e := range g.elements {
		names = append(names, fmt.Sprintf("%s :: %T", e.Name(), e))
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(&b, n)
	}
	for _, w := range g.wires {
		fmt.Fprintln(&b, w)
	}
	return b.String()
}

// --- library elements ---

// Counter counts and forwards packets on port 0.
type Counter struct {
	Base
	Packets, Bytes uint64
}

// NewCounter creates a Counter.
func NewCounter(name string) *Counter { return &Counter{Base: NewBase(name)} }

// Push implements Element.
func (c *Counter) Push(port int, p *netstack.Packet) {
	c.Packets++
	c.Bytes += uint64(len(p.Payload))
	c.Out(0, p)
}

// Discard drops everything; the explicit sink makes graphs auditable.
type Discard struct {
	Base
	Dropped uint64
}

// NewDiscard creates a Discard.
func NewDiscard(name string) *Discard { return &Discard{Base: NewBase(name)} }

// Push implements Element.
func (d *Discard) Push(port int, p *netstack.Packet) { d.Dropped++ }

// Classifier routes packets to the output port chosen by Fn; a negative
// return drops the packet.
type Classifier struct {
	Base
	Fn func(*netstack.Packet) int
}

// NewClassifier creates a Classifier.
func NewClassifier(name string, fn func(*netstack.Packet) int) *Classifier {
	return &Classifier{Base: NewBase(name), Fn: fn}
}

// Push implements Element.
func (c *Classifier) Push(port int, p *netstack.Packet) {
	if out := c.Fn(p); out >= 0 {
		c.Out(out, p)
	}
}

// Tap invokes Fn on every packet (cloned view) and forwards the original on
// port 0. Used for trace recording.
type Tap struct {
	Base
	Fn func(*netstack.Packet)
}

// NewTap creates a Tap.
func NewTap(name string, fn func(*netstack.Packet)) *Tap {
	return &Tap{Base: NewBase(name), Fn: fn}
}

// Push implements Element.
func (t *Tap) Push(port int, p *netstack.Packet) {
	if t.Fn != nil {
		t.Fn(p)
	}
	t.Out(0, p)
}

// Func wraps a closure as an element (handy leaf, e.g. "transmit on NIC").
type Func struct {
	Base
	Fn func(port int, p *netstack.Packet)
}

// NewFunc creates a Func element.
func NewFunc(name string, fn func(port int, p *netstack.Packet)) *Func {
	return &Func{Base: NewBase(name), Fn: fn}
}

// Push implements Element.
func (f *Func) Push(port int, p *netstack.Packet) { f.Fn(port, p) }
