package experiments

import (
	"strconv"
	"time"

	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
	"gq/internal/smtpx"
)

// Figure7Config tunes the Botfarm reproduction.
type Figure7Config struct {
	Seed     int64
	Duration time.Duration
	// DropProb makes the SMTP sink drop connections probabilistically,
	// producing the Fig. 7 flows-vs-sessions gap.
	DropProb float64
	// RustockInmates / GrumInmates sizes the population.
	RustockInmates, GrumInmates int
}

// Figure7Outcome carries the regenerated report plus the numeric shape.
type Figure7Outcome struct {
	Farm    *farm.Farm
	Subfarm *farm.Subfarm
	Report  string

	ReflectedSMTPFlows int
	SMTPSessions       uint64
	SMTPDataTransfers  uint64
}

// RunFigure7 builds the "Botfarm" from Fig. 6/Fig. 7 — Rustock and Grum
// inmates under their per-family policies, auto-infection, SMTP sinks with
// probabilistic dropping — runs it, and renders the activity report.
func RunFigure7(cfg Figure7Config) (*Figure7Outcome, error) {
	if cfg.Duration == 0 {
		cfg.Duration = time.Hour
	}
	if cfg.RustockInmates == 0 {
		cfg.RustockInmates = 1
	}
	if cfg.GrumInmates == 0 {
		cfg.GrumInmates = 1
	}
	f := farm.New(cfg.Seed)
	ccAddr := netstack.MustParseAddr("50.8.207.91") // 50.8.207.91.SteepHost.Net
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		return nil, err
	}

	rustockHi := 15 + cfg.RustockInmates
	grumHi := rustockHi + cfg.GrumInmates
	policyText := "[VLAN 16-" + itoa(rustockHi) + "]\n" +
		"Decider = Rustock\nInfection = rustock.100921.*.exe\n\n" +
		"[VLAN " + itoa(rustockHi+1) + "-" + itoa(grumHi) + "]\n" +
		"Decider = Grum\nInfection = grum.100818.*.exe\n\n" +
		"[VLAN 16-" + itoa(grumHi) + "]\n" +
		"Trigger = *:25/tcp / 30min < 1 -> revert\n"

	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: uint16(grumHi + 2),
		ServiceVLAN:  11,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: policyText,
		SampleLibrary: []*policy.Sample{
			policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-1")),
			policy.NewSample("grum.100818.001.exe", "grum", []byte("MZ-grum-1")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:   cfg.DropProb,
		SinkStrictness: smtpx.Lenient,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.RustockInmates+cfg.GrumInmates; i++ {
		if _, err := sf.AddInmate("bot"); err != nil {
			return nil, err
		}
	}
	f.Run(cfg.Duration)

	out := &Figure7Outcome{Farm: f, Subfarm: sf}
	out.Report = f.Reporter(true).Generate()
	for _, rec := range sf.Router.Records() {
		if rec.RespPort == 25 && rec.Verdict.Has(shim.Reflect) {
			out.ReflectedSMTPFlows++
		}
	}
	for _, st := range sf.SMTPAnalyzer.PerInmate {
		out.SMTPSessions += st.Sessions
		out.SMTPDataTransfers += st.DataTransfers
	}
	return out, nil
}

func itoa(v int) string { return strconv.Itoa(v) }
