package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"gq/internal/chaos"
	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/policy"
	"gq/internal/rawiron"
	"gq/internal/smtpx"
	"gq/internal/supervisor"
)

// FleetConfig parameterises the fleet lockdown soak: three subfarms under
// the full supervision tree, each fed the blackout fault profile, with the
// first subfarm's containment plane killed hard enough that no supervised
// restart can save it — the run that proves the tree recovers every
// survivable fault and escalates the unsurvivable one all the way to
// global dead-man lockdown without a single probe escape.
type FleetConfig struct {
	Seed int64

	// Duration is the fault window (default 12 virtual minutes — long
	// enough for the alpha kill storm to quarantine all three of its
	// containment servers, the subfarm to fail closed, and the root's
	// dead-man budget to expire into global lockdown).
	Duration time.Duration

	// Sharded builds the farm with per-subfarm simulation domains driven
	// by Workers goroutines (0 = GOMAXPROCS); ExtShards > 1 additionally
	// spreads the external hosts over that many internet shards
	// (farm.NewShardedN). Journals are byte-identical across worker
	// counts for a fixed (Seed, ExtShards).
	Sharded   bool
	Workers   int
	ExtShards int
}

func (cfg FleetConfig) withDefaults() FleetConfig {
	if cfg.Duration == 0 {
		cfg.Duration = 12 * time.Minute
	}
	return cfg
}

// fleetSupervision is the tree tuning the soak runs under: default
// heartbeat cadence, a two-restart circuit breaker (the third kill of any
// endpoint inside the window quarantines it), and compressed escalation
// budgets so the whole ladder — quarantine, subfarm lockdown, global
// dead-man — fits the fault window.
func fleetSupervision() supervisor.Config {
	return supervisor.Config{
		BreakerThreshold: 2,
		LockdownBudget:   45 * time.Second,
		DeadManBudget:    90 * time.Second,
		WedgeBudget:      3 * time.Minute,
	}
}

// Per-subfarm fault profiles. All three ride the blackout preset (link
// impairment, sink crashes, a controller hang, a recycler wedge); Alpha
// additionally overrides the containment-server kill schedule with a
// storm dense enough to put three kills on each of its three servers —
// past the two-restart breaker, so the whole plane quarantines.
const (
	fleetAlphaProfile = "blackout," +
		"cscrash=2m,cscrash=2m30s,cscrash=3m," +
		"cscrash=4m,cscrash=4m30s,cscrash=5m," +
		"cscrash=6m,cscrash=6m30s,cscrash=7m"
	fleetBetaProfile = "blackout"
	// Gamma staggers three wedge injections so the cancel catches every
	// rotation member in a timer-parked phase (members mid-reimage are
	// event-driven and immune to a single wedge).
	fleetGammaProfile = "blackout," +
		"recyclerwedge=4m30s,recyclerwedge=5m30s,recyclerwedge=6m30s"
)

// FleetOutcome reports the run, the escalation record, and the
// fleet-invariant checks.
type FleetOutcome struct {
	Farm      *farm.Farm
	Subfarms  []*farm.Subfarm
	Tree      *supervisor.Root
	Injectors []*chaos.Injector

	// Probes holds the containment probes per phase ("before", "during",
	// "after"), one per subfarm in subfarm order. Every single one must
	// come back with zero escapes.
	Probes map[string][]*farm.ProbeOutcome

	// Journal is the full NDJSON stream; byte-identical across runs with
	// the same (seed, shard layout) at any worker count.
	Journal  []byte
	Snapshot *obs.Snapshot

	// Escalations is the deterministic escalation record: the root's
	// history and controller ladder plus each subfarm node's escalation
	// list, keyed "root", "root.controller", and the subfarm names. It
	// must DeepEqual across worker counts.
	Escalations map[string][]string
	// Health is each subfarm node's per-endpoint health-transition
	// history — the same determinism surface, one level down.
	Health map[string]map[string][]string

	// GlobalLockdownAt is the sim time of the (latest) global dead-man
	// lockdown; zero means the ladder never reached the top.
	GlobalLockdownAt time.Duration

	LockdownDrops uint64 // packets the alpha gateway dropped while failed closed
	Rearms        uint64 // recycler re-arms performed by the root node
	Cycles        int    // gamma recycling cycles completed despite the wedge

	// Problems lists every violated invariant; empty means the tree held
	// the fleet together exactly as designed.
	Problems []string
}

// fleetSubfarm describes one habitat in the soak.
type fleetSubfarm struct {
	name    string
	vlanLo  uint16
	bots    int    // VM inmates (alpha/beta)
	iron    int    // raw-iron machines under a recycler (gamma)
	servers int    // containment cluster size
	profile string // chaos spec
}

// RunFleetSoak builds three supervised subfarms under one supervision
// tree, probes containment while healthy, runs the blackout fault window
// (containment kill storm on alpha, sink crashes and a controller hang
// everywhere, a recycler wedge on gamma), then proves the escalation
// ladder end to end: survivable faults recover through the tree, the
// unsurvivable alpha plane quarantines → fails closed → drags the root
// into global dead-man lockdown; probes during lockdown and after an
// operator release still cannot escape; and every flow table drains
// empty. The journal and escalation record are part of the determinism
// surface: byte-identical / DeepEqual at any worker count.
func RunFleetSoak(cfg FleetConfig) (*FleetOutcome, error) {
	cfg = cfg.withDefaults()
	var f *farm.Farm
	switch {
	case cfg.Sharded && cfg.ExtShards > 1:
		f = farm.NewShardedN(cfg.Seed, cfg.Workers, cfg.ExtShards)
	case cfg.Sharded:
		f = farm.NewSharded(cfg.Seed, cfg.Workers)
	default:
		f = farm.New(cfg.Seed)
	}
	out := &FleetOutcome{
		Farm:        f,
		Probes:      make(map[string][]*farm.ProbeOutcome),
		Escalations: make(map[string][]string),
		Health:      make(map[string]map[string][]string),
	}

	// Journal first, so the determinism comparison covers the whole run.
	var journal bytes.Buffer
	sink := f.Sim.Obs().Journal.AttachNDJSON(&journal)

	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		return nil, err
	}

	plan := []fleetSubfarm{
		{name: "Alpha", vlanLo: 16, bots: 4, servers: 3, profile: fleetAlphaProfile},
		{name: "Beta", vlanLo: 32, bots: 4, servers: 2, profile: fleetBetaProfile},
		{name: "Gamma", vlanLo: 48, iron: 2, servers: 2, profile: fleetGammaProfile},
	}

	var gammaRec *farm.Recycler
	for i, p := range plan {
		inmates := p.bots + p.iron
		policyText := fmt.Sprintf("[VLAN %d-%d]\n", p.vlanLo, p.vlanLo+uint16(inmates)-1) +
			"Decider = Rustock\nInfection = rustock.100921.*.exe\n"
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name:   p.name,
			VLANLo: p.vlanLo,
			// Headroom above the inmates for one probe inmate per phase.
			VLANHi:       p.vlanLo + uint16(inmates) + 3,
			ServiceVLAN:  p.vlanLo - 5,
			GlobalPool:   netstack.MustParsePrefix(fmt.Sprintf("192.0.%d.0/24", 2+i)),
			InfraPool:    netstack.MustParsePrefix(fmt.Sprintf("192.0.%d.0/24", 32+i)),
			PolicyConfig: policyText,
			SampleLibrary: []*policy.Sample{
				policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-1")),
			},
			RepeatBatches: true,
			CCHosts: map[string]policy.AddrPort{
				"Rustock": {Addr: ccAddr, Port: 443},
			},
			SinkDropProb:       0.2,
			SinkStrictness:     smtpx.Lenient,
			ContainmentServers: p.servers,
		})
		if err != nil {
			return nil, err
		}
		out.Subfarms = append(out.Subfarms, sf)

		for j := 0; j < p.bots; j++ {
			if _, err := sf.AddInmate(fmt.Sprintf("%s-bot-%d", strings.ToLower(p.name), j)); err != nil {
				return nil, err
			}
		}
		if p.iron > 0 {
			// Small images over a fast trunk keep the reimage leg short, so
			// the rotation's natural inter-mark gap stays well inside the
			// wedge budget — only the injected wedge can freeze the mark.
			sf.EnableRawIron(rawiron.Config{
				MaxConcurrent: 2, ImageSizeMB: 256,
				TrunkMBps: 16, HiddenRestoreMBps: 16,
			})
			rec := sf.AttachRecycler(farm.RecyclerConfig{DetonateFor: 90 * time.Second})
			for j := 0; j < p.iron; j++ {
				fi, _, err := sf.AddRawIronInmate(fmt.Sprintf("iron-%d", j), "winxp-golden")
				if err != nil {
					return nil, err
				}
				if err := rec.Manage(fi); err != nil {
					return nil, err
				}
			}
			rec.Start()
			gammaRec = rec
		}
	}

	// The whole tree comes up before any traffic or fault: root node,
	// every subfarm node, the recycler progress watch, the shard-host
	// aliveness watch over steephost.
	out.Tree = f.SuperviseTree(fleetSupervision())

	// Phase 1 — probes against the healthy fleet.
	if err := fleetProbeRound(f, out, "before", 0); err != nil {
		return nil, err
	}

	// Phase 2 — the blackout window.
	for i, p := range plan {
		prof, err := chaos.Parse(p.profile)
		if err != nil {
			return nil, err
		}
		out.Injectors = append(out.Injectors, chaos.Apply(out.Subfarms[i], prof))
	}
	f.Run(cfg.Duration)

	lockedAfterMain := out.Tree.GlobalLockedDown()

	// Phase 3 — probes while the fleet is in global dead-man lockdown.
	if err := fleetProbeRound(f, out, "during", 1); err != nil {
		return nil, err
	}

	// Phase 4 — operator release, then probe again. Alpha's containment
	// plane is still quarantined, so its node re-escalates: back into
	// subfarm lockdown after LockdownBudget, back into global lockdown
	// after DeadManBudget — fail-closed is sticky until the plane is
	// actually repaired, and the probes must not escape in the gap.
	out.Tree.Release("operator: fleet soak release")
	if err := fleetProbeRound(f, out, "after", 2); err != nil {
		return nil, err
	}

	// Wind down: stop the rotation and the specimens (VLAN order — map
	// order would leak into the journal), end injection, drain past every
	// sweep horizon.
	if gammaRec != nil {
		gammaRec.Stop()
	}
	for _, sf := range out.Subfarms {
		vlans := make([]int, 0, len(sf.Inmates))
		for vlan := range sf.Inmates {
			vlans = append(vlans, int(vlan))
		}
		sort.Ints(vlans)
		for _, vlan := range vlans {
			sf.Inmates[uint16(vlan)].Terminate()
		}
	}
	for _, inj := range out.Injectors {
		inj.Stop()
	}
	f.Run(12 * time.Minute)

	if err := sink.Flush(); err != nil {
		return nil, err
	}
	out.Journal = append([]byte(nil), journal.Bytes()...)

	// The deterministic escalation record.
	out.Escalations["root"] = out.Tree.History()
	out.Escalations["root.controller"] = out.Tree.ControllerHistory()
	for _, sf := range out.Subfarms {
		out.Escalations[sf.Name] = sf.Supervisor.Escalations()
		out.Health[sf.Name] = sf.Supervisor.HealthHistory()
	}
	out.GlobalLockdownAt = out.Tree.GlobalLockdownAt()

	// --- Invariant checks ---
	bad := func(format string, args ...any) {
		out.Problems = append(out.Problems, fmt.Sprintf(format, args...))
	}

	// Containment held at every phase: not one probe escaped.
	for _, phase := range []string{"before", "during", "after"} {
		for i, probe := range out.Probes[phase] {
			if escaped := probe.Escaped(); len(escaped) > 0 {
				bad("%s containment probe (%s) escaped: %v",
					out.Subfarms[i].Name, phase, escaped)
			}
		}
	}

	// The ladder reached the top inside the fault window, and the
	// operator release did not stick: alpha's dead plane re-escalated.
	if !lockedAfterMain {
		bad("fault window ended without global dead-man lockdown")
	}
	if !out.Tree.GlobalLockedDown() {
		bad("release with a still-dead containment plane did not re-escalate to global lockdown")
	}
	if out.GlobalLockdownAt == 0 {
		bad("GlobalLockdownAt is zero despite lockdown")
	}

	alpha, beta, gamma := out.Subfarms[0], out.Subfarms[1], out.Subfarms[2]
	// Alpha: every containment server breaker-quarantined, node in
	// fail-closed lockdown, and the gateway actually dropped traffic.
	for i := range alpha.CSCluster {
		if !alpha.Supervisor.Quarantined(i) {
			bad("alpha cs%d survived a three-kill schedule that must trip the breaker", i)
		}
	}
	if !alpha.Supervisor.LockedDown() {
		bad("alpha's dead containment plane did not end in subfarm lockdown")
	}
	snap := f.Sim.Obs().Snapshot()
	out.Snapshot = snap
	out.LockdownDrops = snap.Counter("subfarm.Alpha.lockdown_drops")
	if out.LockdownDrops == 0 {
		bad("alpha gateway in lockdown dropped no packets — fail-closed never bit")
	}

	// Beta and gamma: every fault was survivable and the tree recovered
	// it — no quarantine, no lockdown, plane healthy at the end.
	for _, sf := range []*farm.Subfarm{beta, gamma} {
		for i := range sf.CSCluster {
			if sf.Supervisor.Quarantined(i) {
				bad("%s cs%d quarantined — two kills within the window must stay under the breaker", sf.Name, i)
			} else if !sf.Supervisor.Healthy(i) {
				bad("%s cs%d still unhealthy after drain — supervised restart failed", sf.Name, i)
			}
		}
		// The node is in lockdown at the end — but only because the global
		// dead-man fan-out closed it. It must never have escalated on its
		// own: no containment_dead, no self-originated lockdown.
		for _, e := range sf.Supervisor.Escalations() {
			if strings.HasPrefix(e, "containment_dead@") {
				bad("%s escalated on its own (%s) — its faults were all survivable", sf.Name, e)
			}
		}
		if !sf.Supervisor.EndpointHealthy(supervisor.KindSink, "smtpsink") {
			bad("%s smtpsink still down — supervised sink restart failed", sf.Name)
		}
	}

	// The controller hang was detected by the subfarm PING probes and
	// cleared by the root's restart ladder.
	if !out.Tree.ControllerHealthy() {
		bad("controller still unhealthy — the root restart ladder failed to clear the hang")
	}
	if len(out.Tree.ControllerHistory()) == 0 {
		bad("controller ladder has no history — the hang was never detected")
	}
	if got := snap.Counter("supervisor.root.restarts"); got == 0 {
		bad("root restarted the controller 0 times — the hang was never repaired")
	}

	// The recycler wedge was detected by the progress watch and re-armed;
	// the rotation kept cycling afterwards.
	out.Rearms = snap.Counter("supervisor.root.rearms")
	if out.Rearms == 0 {
		bad("recycler wedge never re-armed — the root progress watch missed it")
	}
	if gammaRec != nil {
		out.Cycles = gammaRec.Cycles
		if out.Cycles < 2 {
			bad("gamma completed %d recycling cycles, want >= 2 — the rotation did not survive the wedge", out.Cycles)
		}
		if gammaRec.Lost != 0 {
			bad("gamma lost %d rotation members — the wedge must be survivable", gammaRec.Lost)
		}
	}

	// Satellite regression: on a supervised subfarm the chaos injector
	// only breaks the sink; the restart must be journalled by the
	// supervisor, never by chaos.
	if !journalHas(out.Journal, `"`+supervisor.EvEndpointRestart+`"`, "sink:smtpsink") {
		bad("journal has no supervisor restart for sink:smtpsink — supervised sink recovery missing")
	}
	if !journalHas(out.Journal, `"`+chaos.EvSinkCrash+`"`) {
		bad("journal has no chaos sink_crash — the fault never fired")
	}
	for _, forbidden := range []string{
		chaos.EvSinkRestore, chaos.EvCSRestart, chaos.EvCtlRestore, chaos.EvRecRearm,
	} {
		if journalHas(out.Journal, `"`+forbidden+`"`) {
			bad("journal has %s — chaos restored a fault the supervision tree owns", forbidden)
		}
	}

	// Every flow table drained empty, lockdown or not.
	for _, sf := range out.Subfarms {
		if n := sf.Router.ActiveFlows(); n != 0 {
			bad("%s flow table leaked: %d entries after drain", sf.Name, n)
		}
	}
	// And every injected CS crash actually fired.
	for i, inj := range out.Injectors {
		prof, _ := chaos.Parse(plan[i].profile)
		if inj.Crashes != len(prof.CSCrashAt) {
			bad("%s injected %d CS crashes, profile scheduled %d",
				plan[i].name, inj.Crashes, len(prof.CSCrashAt))
		}
	}

	return out, nil
}

// fleetProbeRound runs one containment probe per subfarm. Each (subfarm,
// round) pair gets its own canary address so repeated rounds never stack
// duplicate canary hosts on one IP — an escape in any round is
// attributable to exactly one probe.
func fleetProbeRound(f *farm.Farm, out *FleetOutcome, phase string, round int) error {
	for i, sf := range out.Subfarms {
		addr := netstack.MustParseAddr(fmt.Sprintf("198.51.100.%d", 200+10*i+round))
		var targets []farm.ProbeTarget
		for _, port := range []uint16{22, 25, 80, 443} {
			targets = append(targets, farm.ProbeTarget{Addr: addr, Port: port})
		}
		probe, err := farm.RunContainmentProbe(f, sf, targets, 2*time.Minute)
		if err != nil {
			return err
		}
		out.Probes[phase] = append(out.Probes[phase], probe)
	}
	return nil
}

// journalHas reports whether any NDJSON line contains every needle.
func journalHas(journal []byte, needles ...string) bool {
	for _, line := range bytes.Split(journal, []byte("\n")) {
		ok := true
		for _, n := range needles {
			if !bytes.Contains(line, []byte(n)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
