package experiments

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/containment"
	"gq/internal/farm"
	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
)

// fig5Handler is the exact Fig. 5 content control: the requested resource
// is rewritten (bot.exe -> cleanup.exe) on the way to the target, and the
// target's 200 OK comes back as 404 NOT FOUND.
type fig5Handler struct{}

func (fig5Handler) OnClientData(s *containment.Session, data []byte) {
	s.WriteServer([]byte(strings.Replace(string(data), "GET /bot.exe", "GET /cleanup.exe", 1)))
}
func (fig5Handler) OnServerData(s *containment.Session, data []byte) {
	s.WriteClient([]byte(strings.Replace(string(data), "HTTP/1.1 200 OK", "HTTP/1.1 404 NOT FOUND", 1)))
}
func (fig5Handler) OnClientClose(s *containment.Session) { s.CloseServer() }
func (fig5Handler) OnServerClose(s *containment.Session) { s.CloseClient() }

type fig5Decider struct{}

func (fig5Decider) Name() string { return "Fig5Rewrite" }
func (fig5Decider) Decide(req *shim.Request) containment.Decision {
	return containment.Decision{
		Verdict: shim.Rewrite, Annotation: "C&C filtering", Handler: fig5Handler{},
	}
}

func init() {
	policy.Register("Fig5Rewrite", func(env *policy.Env) containment.Decider { return fig5Decider{} })
}

// Figure5Outcome carries the captured packet sequence plus verification.
type Figure5Outcome struct {
	Trace        []string
	InmateGot    string
	TargetSaw    string
	SawReqShim   bool
	SawSeqBumped bool
	SawRewritten bool
}

// RunFigure5 reproduces the Fig. 5 packet flow: a REWRITE containment of an
// inmate's HTTP GET, traced at the subfarm tap, with the shim messages and
// sequence-space bumping visible on the wire.
func RunFigure5(seed int64) (*Figure5Outcome, string, error) {
	f := farm.New(seed)
	targetAddr := netstack.MustParseAddr("192.150.187.12")
	target := f.AddExternalHost("target", targetAddr)
	out := &Figure5Outcome{}
	target.Listen(80, func(c *host.Conn) {
		c.OnData = func(d []byte) {
			out.TargetSaw += string(d)
			c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 14\r\n\r\nMZ-REAL-BINARY"))
		}
		c.OnPeerClose = func() { c.Close() }
	})

	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "fig5",
		VLANLo: 12, VLANHi: 14,
		ServiceVLAN:    11,
		GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
		FallbackPolicy: "Fig5Rewrite",
	})
	if err != nil {
		return nil, "", err
	}

	// Tap: render each packet the way Fig. 5 draws them.
	sf.Router.AddTap(func(p *netstack.Packet) {
		if p.TCP == nil {
			return
		}
		line := fmt.Sprintf("%-12s %s:%d -> %s:%d [%s] seq=%d ack=%d len=%d",
			f.Sim.Now().Round(time.Millisecond),
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			netstack.FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.Payload))
		if len(p.Payload) == shim.RequestLen {
			if _, err := shim.UnmarshalRequest(p.Payload); err == nil {
				line += "   <= REQ SHIM injected into sequence space"
				out.SawReqShim = true
			}
		}
		if strings.HasPrefix(string(p.Payload), "GET /bot.exe") {
			line += "   <= original request riding bumped sequence numbers (SEQ += |REQ SHIM|)"
			out.SawSeqBumped = true
		}
		out.Trace = append(out.Trace, line)
	})
	// The rewritten request leaves on leg 2 via the upstream interface
	// (Fig. 5's right-hand column).
	f.Gateway.AddUpstreamTap(func(frame []byte) {
		p, err := netstack.ParseFrame(frame)
		if err != nil || p.TCP == nil {
			return
		}
		line := fmt.Sprintf("%-12s %s:%d -> %s:%d [%s] seq=%d len=%d (upstream)",
			f.Sim.Now().Round(time.Millisecond),
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			netstack.FlagString(p.TCP.Flags), p.TCP.Seq, len(p.Payload))
		if strings.HasPrefix(string(p.Payload), "GET /cleanup.exe") {
			line += "   <= rewritten request forwarded to the target"
			out.SawRewritten = true
		}
		out.Trace = append(out.Trace, line)
	})

	sf.OnBootHook = func(fi *farm.FarmInmate) {
		c := fi.Host.Dial(targetAddr, 80)
		c.OnConnect = func() { c.Write([]byte("GET /bot.exe HTTP/1.1\r\nHost: 192.150.187.12\r\n\r\n")) }
		c.OnData = func(d []byte) { out.InmateGot += string(d) }
	}
	if _, err := sf.AddInmate("inmate"); err != nil {
		return nil, "", err
	}
	f.Run(time.Minute)

	var b strings.Builder
	b.WriteString("Figure 5: TCP packet flow through gateway and containment server (REWRITE)\n")
	for _, line := range out.Trace {
		b.WriteString("  " + line + "\n")
	}
	fmt.Fprintf(&b, "\ninmate received: %q\n", firstLine(out.InmateGot))
	fmt.Fprintf(&b, "target saw:      %q\n", firstLine(out.TargetSaw))
	return out, b.String(), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\r'); i >= 0 {
		return s[:i]
	}
	return s
}
