package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRecoverySoak runs the supervised kill-storm soak on the pinned chaos
// seeds: six containment-server kills across a 3-member cluster, each of
// which must be detected by missed heartbeats, failed over (stranded flows
// fail closed, new flows rendezvous onto the healthy subset), and repaired
// by a supervised restart within the recovery bound — all with zero probe
// escapes and an empty flow table after drain.
func TestRecoverySoak(t *testing.T) {
	for _, seed := range chaosSeeds {
		for _, workers := range []int{1, 4} {
			out, err := RunRecoverySoak(RecoveryConfig{Seed: seed, Sharded: true, Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			for _, problem := range out.Problems {
				t.Errorf("seed %d workers %d: %s", seed, workers, problem)
			}
			if len(out.Recoveries) == 0 {
				t.Errorf("seed %d workers %d: no recoveries measured — kill storm never fired?", seed, workers)
			}
			t.Logf("seed %d workers %d: flows=%d verdicts=%d failclosed=%d crashes=%d recoveries=%v max=%v probe=[%s]",
				seed, workers, out.FlowsCreated, out.Verdicts, out.FlowsFailClosed,
				out.Injector.Crashes, out.Recoveries, out.MaxObserved, out.Probe)
		}
	}
}

// TestRecoverySoakDeterminism re-proves the sharding guarantee under
// supervision and failover: one pinned seed at 1, 2 and 4 workers must
// yield byte-identical journals, identical recovery intervals, and
// identical health-transition histories.
func TestRecoverySoakDeterminism(t *testing.T) {
	const seed = 7
	var refJournal []byte
	var refRecoveries []string
	var refHealth map[string][]string
	for _, workers := range []int{1, 2, 4} {
		out, err := RunRecoverySoak(RecoveryConfig{Seed: seed, Sharded: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, problem := range out.Problems {
			t.Errorf("workers=%d: %s", workers, problem)
		}
		recoveries := make([]string, len(out.Recoveries))
		for i, d := range out.Recoveries {
			recoveries[i] = d.String()
		}
		if workers == 1 {
			refJournal, refRecoveries, refHealth = out.Journal, recoveries, out.HealthHistory
			continue
		}
		if !bytes.Equal(refJournal, out.Journal) {
			t.Errorf("workers=%d: journal differs from workers=1 (%d vs %d bytes)",
				workers, len(out.Journal), len(refJournal))
		}
		if !reflect.DeepEqual(refRecoveries, recoveries) {
			t.Errorf("workers=%d: recovery intervals differ: ref=%v got=%v",
				workers, refRecoveries, recoveries)
		}
		if !reflect.DeepEqual(refHealth, out.HealthHistory) {
			t.Errorf("workers=%d: health history differs: ref=%v got=%v",
				workers, refHealth, out.HealthHistory)
		}
	}
}
