package experiments

import (
	"strings"
	"testing"
	"time"

	"gq/internal/malware"
)

func TestRunTable1Subset(t *testing.T) {
	// One fast and one slow capture: the measured shape must match.
	specs := []malware.WormSpec{}
	for _, w := range malware.Table1 {
		if (w.Name == "W32.Korgo.V" && w.Events == 102) || w.Executable == "MsUpdaters.exe" {
			specs = append(specs, w)
		}
	}
	rows, text, err := RunTable1(1, specs, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	korgo, spybot := rows[0], rows[1]
	if korgo.Spec.Name != "W32.Korgo.V" {
		korgo, spybot = spybot, korgo
	}
	if korgo.MeasuredEvents < 2 || spybot.MeasuredEvents < 2 {
		t.Fatalf("events korgo=%d spybot=%d", korgo.MeasuredEvents, spybot.MeasuredEvents)
	}
	if korgo.MeasuredIncub >= spybot.MeasuredIncub {
		t.Fatalf("incubation ordering: korgo %v >= spybot %v",
			korgo.MeasuredIncub, spybot.MeasuredIncub)
	}
	// Connections per infection should track the spec (2 vs 5).
	if korgo.MeasuredConnsPer < 1.5 || korgo.MeasuredConnsPer > 2.5 {
		t.Fatalf("korgo conns/infection %.1f, spec 2", korgo.MeasuredConnsPer)
	}
	if spybot.MeasuredConnsPer < 4 || spybot.MeasuredConnsPer > 6 {
		t.Fatalf("spybot conns/infection %.1f, spec 5", spybot.MeasuredConnsPer)
	}
	for _, want := range []string{"EXECUTABLE", "W32.Korgo.V", "MsUpdaters.exe"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

func TestRunFigure2AllModes(t *testing.T) {
	results, text, err := RunFigure2(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d modes", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("mode %s failed: %s", r.Mode, r.Observed)
		}
	}
	if !strings.Contains(text, "(f) Rewrite") {
		t.Errorf("rendering:\n%s", text)
	}
}

func TestRunFigure5(t *testing.T) {
	out, text, err := RunFigure5(3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SawReqShim {
		t.Error("request shim not visible in the trace")
	}
	if !out.SawSeqBumped {
		t.Error("sequence-bumped original request not visible in the trace")
	}
	if !out.SawRewritten {
		t.Error("rewritten leg-2 request not visible upstream")
	}
	if !strings.Contains(out.InmateGot, "404 NOT FOUND") {
		t.Errorf("inmate got %q", out.InmateGot)
	}
	if !strings.Contains(out.TargetSaw, "GET /cleanup.exe") {
		t.Errorf("target saw %q", out.TargetSaw)
	}
	if !strings.Contains(text, "REQ SHIM") {
		t.Errorf("rendering:\n%s", text)
	}
}

func TestRunFigure7(t *testing.T) {
	out, err := RunFigure7(Figure7Config{Seed: 4, Duration: 45 * time.Minute, DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Rustock", "Grum", "REFLECT", "REWRITE", "autoinfection"} {
		if !strings.Contains(out.Report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The Fig. 7 shape: reflected flows exceed completed sessions when the
	// sink drops probabilistically; DATA/session ratios differ per family.
	if out.ReflectedSMTPFlows == 0 || out.SMTPSessions == 0 {
		t.Fatalf("flows=%d sessions=%d", out.ReflectedSMTPFlows, out.SMTPSessions)
	}
	if uint64(out.ReflectedSMTPFlows) <= out.SMTPSessions {
		t.Fatalf("flows=%d should exceed sessions=%d under a dropping sink",
			out.ReflectedSMTPFlows, out.SMTPSessions)
	}
}

func TestRunScalabilityGateway(t *testing.T) {
	pts, text, err := RunScalabilityGateway(5, [][2]int{{1, 2}, {3, 2}}, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// More subfarms means more adjudicated flows on the one gateway.
	if pts[1].FlowsAdjudicated <= pts[0].FlowsAdjudicated {
		t.Fatalf("scaling shape: %d !> %d", pts[1].FlowsAdjudicated, pts[0].FlowsAdjudicated)
	}
	if !strings.Contains(text, "subfarms") {
		t.Errorf("rendering:\n%s", text)
	}
}

func TestRunScalabilityCluster(t *testing.T) {
	pts, text, err := RunScalabilityCluster(6, []int{1, 3}, 6, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	single, cluster := pts[0], pts[1]
	if single.FlowsAdjudicated == 0 || cluster.FlowsAdjudicated == 0 {
		t.Fatalf("no flows adjudicated: %+v", pts)
	}
	// The cluster splits the load: the busiest member handles materially
	// fewer flows than the lone server did.
	if cluster.PerServerMax >= single.PerServerMax {
		t.Fatalf("cluster max %d !< single max %d", cluster.PerServerMax, single.PerServerMax)
	}
	if !strings.Contains(text, "servers") {
		t.Errorf("rendering:\n%s", text)
	}
}

func TestRunScalabilityVLANPool(t *testing.T) {
	n, text := RunScalabilityVLANPool()
	if n != 4094 {
		t.Fatalf("pool size %d, want 4094 (802.1Q)", n)
	}
	if !strings.Contains(text, "4094") {
		t.Errorf("rendering: %s", text)
	}
}
