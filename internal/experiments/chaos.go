package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"gq/internal/chaos"
	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/policy"
	"gq/internal/report"
	"gq/internal/smtpx"
	"gq/internal/supervisor"
	"gq/internal/trace"
)

// ChaosConfig parameterises the chaos soak: the Botfarm demo run under an
// injected fault profile.
type ChaosConfig struct {
	Seed    int64
	Profile chaos.Profile
	// Duration is the fault window (default 20 virtual minutes). A
	// containment probe (2 min) and a drain window long enough for every
	// sweep timeout to elapse run after it.
	Duration time.Duration

	// Sharded builds the farm with per-subfarm simulation domains driven by
	// Workers goroutines (0 = GOMAXPROCS). A sharded run's journal is
	// byte-identical across worker counts for a given seed, though not to
	// the serial run's (the trunk lookahead latency shifts event timing).
	Sharded bool
	Workers int

	// ContainmentServers sizes the subfarm's containment cluster (0 = 1,
	// the single-server Botfarm baseline).
	ContainmentServers int

	// Supervise attaches the containment-plane supervisor (default config):
	// heartbeat health tracking, healthy-subset dispatch, fail-closed
	// eviction of flows stranded on dead servers, and supervised restart.
	// A supervised run's chaos injector does NOT restore crashed servers —
	// recovery is the supervisor's job, and the soak measures it.
	Supervise bool

	// WrapSink, when set, interposes on the journal sink chain: it
	// receives the NDJSON sink the soak attaches and its return value is
	// installed in its place. The ops plane uses this to splice in an
	// obs.Fanout so live subscribers ride along without touching the
	// recorded stream.
	WrapSink func(obs.Sink) obs.Sink

	// OnBuild runs once the farm is fully built (subfarm, inmates) and
	// before the fault profile applies — the hook point for attaching
	// observers such as a served ops plane.
	OnBuild func(*farm.Farm, *farm.Subfarm)
}

// ChaosOutcome reports the run and the resilience-invariant checks.
type ChaosOutcome struct {
	Farm     *farm.Farm
	Subfarm  *farm.Subfarm
	Injector *chaos.Injector
	Probe    *farm.ProbeOutcome
	// FacadeEcho is the blocking-facade self-test pair that ran inside the
	// habitat for the whole soak; its round trips are part of the journal.
	FacadeEcho *farm.FacadeEcho

	// Journal is the full NDJSON event stream; byte-identical across runs
	// with the same (seed, profile) — the determinism proof.
	Journal []byte

	// Snapshot is the final metrics snapshot; identical across runs with the
	// same (seed, profile, sharding mode) regardless of worker count.
	Snapshot *obs.Snapshot

	FlowsCreated, Verdicts uint64
	FlowsFailClosed        uint64
	ActiveFlows            int
	CrashEventsRecorded    int

	// Supervisor is set on supervised runs, along with the per-endpoint
	// health-transition history (part of the determinism surface: it must
	// match exactly across worker counts for a given seed).
	Supervisor    *supervisor.Supervisor
	HealthHistory map[string][]string

	// Problems lists every violated invariant; empty means the farm
	// degraded gracefully.
	Problems []string
}

// RunChaosSoak builds the Botfarm demo, applies the fault profile, runs it
// through the fault window plus a containment probe, then stops injection,
// drains, and checks the resilience invariants: the flow table returns to
// empty, no probe traffic escapes, the trace-derived flow/verdict totals
// match the registry exactly, and the chaos flight recorder captured every
// injected containment-server crash.
func RunChaosSoak(cfg ChaosConfig) (*ChaosOutcome, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 20 * time.Minute
	}
	var f *farm.Farm
	if cfg.Sharded {
		f = farm.NewSharded(cfg.Seed, cfg.Workers)
	} else {
		f = farm.New(cfg.Seed)
	}

	// Attach the journal sink before any traffic so the stream covers the
	// whole run (the determinism comparison needs every event).
	var journal bytes.Buffer
	sink := f.Sim.Obs().Journal.AttachNDJSON(&journal)
	if cfg.WrapSink != nil {
		f.Sim.Obs().Journal.SetSink(cfg.WrapSink(sink))
	}

	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		return nil, err
	}

	policyText := "[VLAN 16-17]\n" +
		"Decider = Rustock\nInfection = rustock.100921.*.exe\n\n" +
		"[VLAN 18-19]\n" +
		"Decider = Grum\nInfection = grum.100818.*.exe\n\n" +
		"[VLAN 16-19]\n" +
		"Trigger = *:25/tcp / 30min < 1 -> revert\n"

	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "Botfarm",
		VLANLo: 16, VLANHi: 24,
		ServiceVLAN:  11,
		GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
		InfraPool:    netstack.MustParsePrefix("192.0.9.0/24"),
		PolicyConfig: policyText,
		SampleLibrary: []*policy.Sample{
			policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-1")),
			policy.NewSample("grum.100818.001.exe", "grum", []byte("MZ-grum-1")),
		},
		RepeatBatches: true,
		CCHosts: map[string]policy.AddrPort{
			"Rustock": {Addr: ccAddr, Port: 443},
			"Grum":    {Addr: ccAddr, Port: 80},
		},
		SinkDropProb:       0.2,
		SinkStrictness:     smtpx.Lenient,
		ContainmentServers: cfg.ContainmentServers,
	})
	if err != nil {
		return nil, err
	}
	out := &ChaosOutcome{Farm: f, Subfarm: sf}
	// The facade self-test pair exercises the blocking net.Conn bridge
	// inside the habitat (sharded or not), putting its proc rendezvous on
	// the journal's byte-determinism surface.
	out.FacadeEcho = sf.AttachFacadeEcho(30*time.Second, 0)
	if cfg.Supervise {
		out.Supervisor = sf.Supervise(supervisor.Config{})
	}

	// Independent ground truth: record the subfarm tap as pcap bytes and
	// re-derive flow/verdict totals from them afterwards.
	var pcap bytes.Buffer
	tw := trace.NewWriter(&pcap)
	var traceErr error
	sf.Router.AddTap(func(p *netstack.Packet) {
		// The tap fires in the router's domain; stamp with that domain's
		// clock (identical to the farm clock when not sharded).
		if err := tw.WritePacket(sf.Sim.WallClock(), p.Marshal()); err != nil && traceErr == nil {
			traceErr = err
		}
	})

	// VLANs 16/17 rustock, 18/19 grum (AddInmate allocates in order).
	for i := 0; i < 4; i++ {
		if _, err := sf.AddInmate(fmt.Sprintf("bot-%d", i)); err != nil {
			return nil, err
		}
	}

	if cfg.OnBuild != nil {
		cfg.OnBuild(f, sf)
	}

	out.Injector = chaos.Apply(sf, cfg.Profile)

	f.Run(cfg.Duration)

	// Containment probe while impairment is still active: the probe inmate
	// joins after Apply, so its own link is clean, but containment itself
	// (gateway + possibly crashed/stalled CS) is under chaos.
	probe, err := farm.RunContainmentProbe(f, sf, nil, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	out.Probe = probe

	// Wind down: stop the specimens, end injection (restoring any fault
	// still in flight), and drain past every sweep horizon so a healthy
	// farm ends with an empty flow table. Terminate in VLAN order — map
	// iteration order would leak into the journal and break the
	// determinism guarantee.
	vlans := make([]int, 0, len(sf.Inmates))
	for vlan := range sf.Inmates {
		vlans = append(vlans, int(vlan))
	}
	sort.Ints(vlans)
	for _, vlan := range vlans {
		sf.Inmates[uint16(vlan)].Terminate()
	}
	out.Injector.Stop()
	f.Run(12 * time.Minute)

	if err := tw.Flush(); err != nil {
		return nil, err
	}
	if traceErr != nil {
		return nil, traceErr
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	out.Journal = append([]byte(nil), journal.Bytes()...)

	// --- Invariant checks ---
	bad := func(format string, args ...any) {
		out.Problems = append(out.Problems, fmt.Sprintf(format, args...))
	}

	out.ActiveFlows = sf.Router.ActiveFlows()
	if out.ActiveFlows != 0 {
		bad("flow table leaked: %d entries after drain", out.ActiveFlows)
	}

	if escaped := probe.Escaped(); len(escaped) > 0 {
		bad("containment probe escaped: %v", escaped)
	}

	recs, err := trace.Read(bytes.NewReader(pcap.Bytes()))
	if err != nil {
		return nil, err
	}
	csIPs := make([]netstack.Addr, 0, len(sf.CSCluster))
	for _, srv := range sf.CSCluster {
		csIPs = append(csIPs, srv.Host.Addr())
	}
	audit := report.AuditTrace(recs, farm.ContainmentPort, csIPs...)
	snap := f.Sim.Obs().Snapshot()
	out.Snapshot = snap
	out.FlowsCreated = snap.Counter("subfarm.Botfarm.flows_created")
	out.Verdicts = snap.Counter("subfarm.Botfarm.verdicts_applied")
	out.FlowsFailClosed = snap.Counter("subfarm.Botfarm.flows_failclosed")
	if out.FlowsCreated == 0 {
		bad("no flows created — chaos run produced no traffic")
	}
	if out.FacadeEcho.Rounds == 0 {
		bad("facade echo pair completed no round trips (%d errors) — the blocking "+
			"bridge wedged under chaos", out.FacadeEcho.Errors)
	}
	if audit.FlowsCreated != out.FlowsCreated {
		bad("telemetry drift: trace derives %d flows, registry counted %d",
			audit.FlowsCreated, out.FlowsCreated)
	}
	if audit.Verdicts != out.Verdicts {
		bad("telemetry drift: trace derives %d verdicts, registry counted %d",
			audit.Verdicts, out.Verdicts)
	}
	if problems := f.Reporter(false).CrossCheck(); len(problems) != 0 {
		bad("reporter cross-check: %v", problems)
	}

	// The chaos scope's flight recorder must have captured every injected
	// CS crash (and the profile must actually have fired them all).
	if want := len(cfg.Profile.CSCrashAt); out.Injector.Crashes != want {
		bad("injected %d CS crashes, profile scheduled %d", out.Injector.Crashes, want)
	}
	if d := f.Sim.Obs().Journal.DumpScope(chaos.ScopeFor(sf.Name), "chaos soak post-run"); d != nil {
		for _, e := range d.Events {
			if e.Type == chaos.EvCSCrash {
				out.CrashEventsRecorded++
			}
		}
	}
	if out.CrashEventsRecorded != out.Injector.Crashes {
		bad("flight recorder captured %d of %d CS crashes",
			out.CrashEventsRecorded, out.Injector.Crashes)
	}

	if out.Supervisor != nil {
		out.HealthHistory = out.Supervisor.HealthHistory()
		// The supervisor — not the injector, which skips its restores on
		// supervised runs — must have brought every crashed server back.
		for i := range sf.CSCluster {
			if out.Supervisor.Quarantined(i) {
				bad("cs%d quarantined by circuit breaker — kill schedule within the "+
					"breaker budget must not trip it", i)
			} else if !out.Supervisor.Healthy(i) {
				bad("cs%d still unhealthy after drain — supervised restart failed", i)
			}
		}
		if got, want := len(out.Supervisor.Recoveries), out.Injector.Crashes; got != want {
			bad("supervisor recovered %d of %d CS crashes", got, want)
		}
	}

	return out, nil
}
