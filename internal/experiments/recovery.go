package experiments

import (
	"time"

	"gq/internal/chaos"
)

// RecoveryConfig parameterises the recovery soak: the chaos soak's Botfarm
// demo with a 3-member containment cluster, the "killstorm" fault profile
// (a sustained round-robin kill schedule), and the supervisor attached.
// Where the plain chaos soak proves graceful degradation, the recovery soak
// proves self-healing: every kill must be detected, failed over, and
// repaired within MaxRecovery — with containment never opening up.
type RecoveryConfig struct {
	Seed    int64
	Sharded bool
	Workers int

	// MaxRecovery bounds each crash's down→healthy interval as measured by
	// the supervisor (detection + backed-off restart + health confirmation).
	// Default 1 virtual minute — the killstorm's own CSDownFor, i.e. the
	// supervisor must beat what an unsupervised restore would have done.
	MaxRecovery time.Duration
}

// RecoveryOutcome is the chaos outcome plus the recovery measurements.
type RecoveryOutcome struct {
	*ChaosOutcome

	// Recoveries are the per-crash down→healthy intervals, in detection
	// order; MaxObserved is their maximum.
	Recoveries  []time.Duration
	MaxObserved time.Duration
}

// RunRecoverySoak runs the supervised kill-storm soak and layers the
// recovery invariants on top of the chaos ones (which already demand zero
// probe escapes, an empty flow table after drain, exact telemetry, and
// every crashed server healthy again).
func RunRecoverySoak(cfg RecoveryConfig) (*RecoveryOutcome, error) {
	if cfg.MaxRecovery == 0 {
		cfg.MaxRecovery = time.Minute
	}
	profile, err := chaos.Parse("killstorm")
	if err != nil {
		return nil, err
	}
	chaosOut, err := RunChaosSoak(ChaosConfig{
		Seed:               cfg.Seed,
		Profile:            profile,
		Sharded:            cfg.Sharded,
		Workers:            cfg.Workers,
		ContainmentServers: 3,
		Supervise:          true,
	})
	if err != nil {
		return nil, err
	}
	out := &RecoveryOutcome{ChaosOutcome: chaosOut}
	out.Recoveries = append(out.Recoveries, chaosOut.Supervisor.Recoveries...)
	for _, d := range out.Recoveries {
		if d > out.MaxObserved {
			out.MaxObserved = d
		}
		if d > cfg.MaxRecovery {
			out.Problems = append(out.Problems,
				"recovery took "+d.String()+", bound is "+cfg.MaxRecovery.String())
		}
	}
	return out, nil
}
