package experiments

import (
	"bytes"
	"testing"

	"gq/internal/chaos"
)

// chaosSeeds are the pinned seeds `make chaos` exercises. Two seeds guard
// against a fault schedule that only happens to pass for one RNG stream.
var chaosSeeds = []int64{7, 1031}

// TestChaosSoak runs the Botfarm demo under the "soak" fault profile —
// ≥5% loss, reordering, duplication, corruption, link flaps, a scheduled
// containment-server crash, a verdict-stall window, and a sink outage —
// and demands graceful degradation: the flow table drains to empty, no
// probe traffic escapes, the trace-derived telemetry stays exact, and the
// flight recorder holds every injected crash. Each seed runs twice and the
// two journals must be byte-identical (determinism proof).
func TestChaosSoak(t *testing.T) {
	profile, err := chaos.Parse("soak")
	if err != nil {
		t.Fatal(err)
	}
	if profile.Loss < 0.05 {
		t.Fatalf("soak preset lost its ≥5%% loss floor: %v", profile.Loss)
	}
	for _, seed := range chaosSeeds {
		first := runChaosOnce(t, seed, profile)
		second := runChaosOnce(t, seed, profile)
		if !bytes.Equal(first, second) {
			t.Errorf("seed %d: journals differ between identical runs (%d vs %d bytes) — fault injection is not deterministic",
				seed, len(first), len(second))
		}
	}
}

func runChaosOnce(t *testing.T, seed int64, p chaos.Profile) []byte {
	t.Helper()
	out, err := RunChaosSoak(ChaosConfig{Seed: seed, Profile: p})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for _, problem := range out.Problems {
		t.Errorf("seed %d: %s", seed, problem)
	}
	t.Logf("seed %d: flows=%d verdicts=%d crashes=%d probe=[%s] journal=%dB",
		seed, out.FlowsCreated, out.Verdicts, out.Injector.Crashes, out.Probe, len(out.Journal))
	return out.Journal
}
