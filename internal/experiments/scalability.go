package experiments

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/farm"
	"gq/internal/inmate"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/smtpx"
)

// ScalabilityPoint is one row of the §7.2 gateway-scaling sweep.
type ScalabilityPoint struct {
	Subfarms, InmatesPerSubfarm int
	FlowsAdjudicated            uint64
	SpamSessions                uint64
	WallTime                    time.Duration
	VirtualTime                 time.Duration

	// AvgParallelism (sharded runs only) is the mean number of simulation
	// domains with work per synchronization round — the speedup ceiling the
	// workload offers, independent of the machine's CPU count.
	AvgParallelism float64
}

// RunScalabilityGateway reproduces the §7.2 observation that one gateway
// serves several parallel subfarms (the paper ran 5–6 with a handful to a
// dozen inmates each): for each (subfarms, inmates) point it builds the
// farm, runs the workload, and records flow and wall-clock cost.
func RunScalabilityGateway(seed int64, points [][2]int, duration time.Duration) ([]ScalabilityPoint, string, error) {
	return runScalabilityGateway(seed, points, duration, false, 0)
}

// RunScalabilityGatewayParallel runs the same sweep on a sharded farm:
// each subfarm in its own simulation domain, driven by workers goroutines
// (0 = GOMAXPROCS). Same workload, same invariants — the wall-clock column
// against RunScalabilityGateway's is the sharding speedup.
func RunScalabilityGatewayParallel(seed int64, points [][2]int, duration time.Duration, workers int) ([]ScalabilityPoint, string, error) {
	return runScalabilityGateway(seed, points, duration, true, workers)
}

func runScalabilityGateway(seed int64, points [][2]int, duration time.Duration, sharded bool, workers int) ([]ScalabilityPoint, string, error) {
	var out []ScalabilityPoint
	for _, pt := range points {
		nSub, nInm := pt[0], pt[1]
		start := time.Now()
		var f *farm.Farm
		if sharded {
			// Two external shards take the C&C dialog off the root domain
			// (the flat Internet segment is hash-spread across them), so the
			// sweep exercises the full sharded topology: per-subfarm domains
			// plus de-serialized external hosts.
			f = farm.NewShardedN(seed, workers, 2)
		} else {
			f = farm.New(seed)
		}
		ccAddr := netstack.MustParseAddr("50.8.207.91")
		cc := f.AddExternalHost("cc", ccAddr)
		if _, err := malware.NewCCServer(cc, malware.CCConfig{
			Template: "x", Targets: []netstack.Addr{netstack.MustParseAddr("203.0.113.25")},
		}); err != nil {
			return nil, "", err
		}
		var flows, sessions uint64
		for i := 0; i < nSub; i++ {
			lo := uint16(100 + i*40)
			hi := lo + uint16(nInm) + 2
			sf, err := f.AddSubfarm(farm.SubfarmConfig{
				Name:   fmt.Sprintf("sub%d", i),
				VLANLo: lo, VLANHi: hi,
				ServiceVLAN:  uint16(10 + i),
				GlobalPool:   netstack.Prefix{Base: netstack.AddrFrom4(192, 0, byte(2+i), 0), Bits: 24},
				PolicyConfig: fmt.Sprintf("[VLAN %d-%d]\nDecider = Rustock\nInfection = *.exe\n", lo, hi),
				SampleLibrary: []*policy.Sample{
					policy.NewSample("bot.exe", "rustock", []byte("MZ")),
				},
				RepeatBatches: true,
				CCHosts:       map[string]policy.AddrPort{"Rustock": {Addr: ccAddr, Port: 443}},
				// Paper-shaped spam density: Table 1 engines deliver many
				// messages per SMTP session, so each session is a long-lived
				// dialog rather than a one-shot — that is what keeps several
				// subfarm domains busy in the same synchronization rounds.
				SpamBatch: 100,
				// A real access path is not an ideal wire: with per-link
				// latency each SMTP transaction occupies virtual time, so
				// concurrently-infected subfarms overlap instead of
				// collapsing into disjoint instantaneous bursts.
				AccessLatency:  time.Millisecond,
				SinkStrictness: smtpx.Lenient,
			})
			if err != nil {
				return nil, "", err
			}
			for j := 0; j < nInm; j++ {
				if _, err := sf.AddInmate(fmt.Sprintf("bot%d-%d", i, j)); err != nil {
					return nil, "", err
				}
			}
		}
		f.Run(duration)
		for _, sf := range f.Subfarms {
			flows += sf.Router.VerdictsApplied.Value()
			sessions += sf.SMTPSink.Sessions + sf.BannerSink.Sessions
		}
		p := ScalabilityPoint{
			Subfarms: nSub, InmatesPerSubfarm: nInm,
			FlowsAdjudicated: flows, SpamSessions: sessions,
			WallTime: time.Since(start), VirtualTime: duration,
		}
		if f.Coord != nil {
			if rounds, windows := f.Coord.Stats(); rounds > 0 {
				p.AvgParallelism = float64(windows) / float64(rounds)
			}
		}
		out = append(out, p)
	}
	var b strings.Builder
	b.WriteString("S1: gateway scaling (one gateway, parallel subfarms)\n")
	fmt.Fprintf(&b, "%9s %9s %14s %14s %12s\n", "subfarms", "inmates", "verdicts", "spamSessions", "wall")
	for _, p := range out {
		fmt.Fprintf(&b, "%9d %9d %14d %14d %12v\n",
			p.Subfarms, p.InmatesPerSubfarm, p.FlowsAdjudicated, p.SpamSessions,
			p.WallTime.Round(time.Millisecond))
	}
	return out, b.String(), nil
}

// ClusterPoint is one row of the containment-server cluster comparison.
type ClusterPoint struct {
	Servers          int
	FlowsAdjudicated uint64
	PerServerMax     uint64
	WallTime         time.Duration
}

// RunScalabilityCluster reproduces the §7.2 bottleneck discussion: the
// same inmate population adjudicated by one containment server versus a
// cluster with sticky per-inmate selection. The interesting output is the
// per-server load split.
func RunScalabilityCluster(seed int64, serverCounts []int, inmates int, duration time.Duration) ([]ClusterPoint, string, error) {
	var out []ClusterPoint
	for _, n := range serverCounts {
		start := time.Now()
		f := farm.New(seed)
		ccAddr := netstack.MustParseAddr("50.8.207.91")
		cc := f.AddExternalHost("cc", ccAddr)
		if _, err := malware.NewCCServer(cc, malware.CCConfig{
			Template: "x", Targets: []netstack.Addr{netstack.MustParseAddr("203.0.113.25")},
		}); err != nil {
			return nil, "", err
		}
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name:   "cluster",
			VLANLo: 100, VLANHi: uint16(100 + inmates + 2),
			ServiceVLAN:  11,
			GlobalPool:   netstack.MustParsePrefix("192.0.2.0/24"),
			PolicyConfig: fmt.Sprintf("[VLAN 100-%d]\nDecider = Rustock\nInfection = *.exe\n", 100+inmates+2),
			SampleLibrary: []*policy.Sample{
				policy.NewSample("bot.exe", "rustock", []byte("MZ")),
			},
			RepeatBatches:      true,
			CCHosts:            map[string]policy.AddrPort{"Rustock": {Addr: ccAddr, Port: 443}},
			SinkStrictness:     smtpx.Lenient,
			ContainmentServers: n,
		})
		if err != nil {
			return nil, "", err
		}
		for j := 0; j < inmates; j++ {
			if _, err := sf.AddInmate(fmt.Sprintf("bot%d", j)); err != nil {
				return nil, "", err
			}
		}
		f.Run(duration)
		var total, max uint64
		for _, srv := range sf.CSCluster {
			total += srv.FlowsSeen
			if srv.FlowsSeen > max {
				max = srv.FlowsSeen
			}
		}
		out = append(out, ClusterPoint{
			Servers: n, FlowsAdjudicated: total, PerServerMax: max,
			WallTime: time.Since(start),
		})
	}
	var b strings.Builder
	b.WriteString("S2: containment server cluster (sticky per-inmate selection)\n")
	fmt.Fprintf(&b, "%9s %14s %14s %12s\n", "servers", "totalFlows", "maxPerServer", "wall")
	for _, p := range out {
		fmt.Fprintf(&b, "%9d %14d %14d %12v\n",
			p.Servers, p.FlowsAdjudicated, p.PerServerMax, p.WallTime.Round(time.Millisecond))
	}
	return out, b.String(), nil
}

// RunScalabilityVLANPool reproduces the §7.2 VLAN-ID limit: the IEEE
// 802.1Q twelve-bit ID caps one inmate network at 4,094 usable IDs.
func RunScalabilityVLANPool() (int, string) {
	pool := inmate.NewVLANPool(1, netstack.MaxVLAN)
	n := 0
	for {
		if _, err := pool.Allocate(); err != nil {
			break
		}
		n++
	}
	text := fmt.Sprintf("S3: VLAN ID pool exhausted after %d allocations (802.1Q 12-bit limit; "+
		"the paper's workaround prepends a gateway-internal network identifier)\n", n)
	return n, text
}
