package experiments

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/containment"
	"gq/internal/farm"
	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/policy"
	"gq/internal/shim"
)

// Fig. 2 demo addressing.
var (
	fig2Target  = netstack.MustParseAddr("203.0.113.80")
	fig2AltHost = netstack.MustParseAddr("203.0.113.81")
)

// fig2Decider maps destination port to one verdict per Fig. 2 panel.
type fig2Decider struct{ env *policy.Env }

func (fig2Decider) Name() string { return "Figure2Demo" }

func (d fig2Decider) Decide(req *shim.Request) containment.Decision {
	switch req.RespPort {
	case 8001:
		return containment.Decision{Verdict: shim.Forward, Annotation: "fig2(a) forward"}
	case 8002:
		return containment.Decision{Verdict: shim.Limit, Annotation: "fig2(b) rate-limit"}
	case 8003:
		return containment.Decision{Verdict: shim.Drop, Annotation: "fig2(c) drop"}
	case 8004:
		return containment.Decision{
			Verdict: shim.Redirect, RespIP: fig2AltHost, RespPort: 8004,
			Annotation: "fig2(d) redirect",
		}
	case 8005:
		sinkLoc := d.env.Service(policy.SvcCatchAllSink)
		return containment.Decision{
			Verdict: shim.Reflect, RespIP: sinkLoc.Addr, RespPort: 8005,
			Annotation: "fig2(e) reflect",
		}
	case 8006:
		return containment.Decision{
			Verdict: shim.Rewrite, Annotation: "fig2(f) rewrite",
			Handler: upcaseHandler{},
		}
	default:
		return containment.Decision{Verdict: shim.Drop, Annotation: "outside demo"}
	}
}

// upcaseHandler rewrites flow content: requests pass through unmodified to
// the real destination; responses come back upper-cased.
type upcaseHandler struct{}

func (upcaseHandler) OnClientData(s *containment.Session, data []byte) { s.WriteServer(data) }
func (upcaseHandler) OnServerData(s *containment.Session, data []byte) {
	s.WriteClient([]byte(strings.ToUpper(string(data))))
}
func (upcaseHandler) OnClientClose(s *containment.Session) { s.CloseServer() }
func (upcaseHandler) OnServerClose(s *containment.Session) { s.CloseClient() }

func init() {
	policy.Register("Figure2Demo", func(env *policy.Env) containment.Decider {
		return fig2Decider{env}
	})
}

// Figure2Result records the observed behaviour of one flow-manipulation
// mode.
type Figure2Result struct {
	Mode     string
	Verdict  shim.Verdict
	Observed string
	OK       bool
}

// RunFigure2 demonstrates the six flow-manipulation modes (Fig. 2) inside
// one farm and verifies where each flow's bytes actually went.
func RunFigure2(seed int64) ([]Figure2Result, string, error) {
	f := farm.New(seed)

	// The destination the inmate believes it is talking to.
	targetGot := map[uint16]string{}
	target := f.AddExternalHost("target", fig2Target)
	listenRecord := func(h *host.Host, port uint16, into map[uint16]string) {
		h.Listen(port, func(c *host.Conn) {
			c.OnData = func(d []byte) {
				into[c.LocalPort()] += string(d)
				c.Write([]byte("echo:" + string(d)))
			}
			c.OnPeerClose = func() { c.Close() }
		})
	}
	for _, port := range []uint16{8001, 8002, 8003, 8004, 8006} {
		listenRecord(target, port, targetGot)
	}
	altGot := map[uint16]string{}
	alt := f.AddExternalHost("alt", fig2AltHost)
	listenRecord(alt, 8004, altGot)

	sf, err := f.AddSubfarm(farm.SubfarmConfig{
		Name:   "fig2",
		VLANLo: 16, VLANHi: 20,
		ServiceVLAN:    11,
		GlobalPool:     netstack.MustParsePrefix("192.0.2.0/24"),
		FallbackPolicy: "Figure2Demo",
	})
	if err != nil {
		return nil, "", err
	}

	// The probe inmate opens one flow per mode at boot.
	replies := map[uint16]string{}
	var dropErr error
	sf.OnBootHook = func(fi *farm.FarmInmate) {
		for _, port := range []uint16{8001, 8002, 8003, 8004, 8005, 8006} {
			port := port
			c := fi.Host.Dial(fig2Target, port)
			c.OnConnect = func() { c.Write([]byte(fmt.Sprintf("probe-%d", port))) }
			c.OnData = func(d []byte) { replies[port] += string(d) }
			if port == 8003 {
				c.OnClose = func(err error) { dropErr = err }
			}
		}
	}
	if _, err := sf.AddInmate("probe"); err != nil {
		return nil, "", err
	}
	f.Run(2 * time.Minute)

	results := []Figure2Result{
		{
			Mode: "(a) Forward", Verdict: shim.Forward,
			Observed: fmt.Sprintf("target received %q, inmate got %q", targetGot[8001], replies[8001]),
			OK:       targetGot[8001] == "probe-8001" && replies[8001] == "echo:probe-8001",
		},
		{
			Mode: "(b) Rate-limit", Verdict: shim.Limit,
			Observed: fmt.Sprintf("target received %q (throttled path)", targetGot[8002]),
			OK:       targetGot[8002] == "probe-8002",
		},
		{
			Mode: "(c) Drop", Verdict: shim.Drop,
			Observed: fmt.Sprintf("target received %q, inmate conn error %v", targetGot[8003], dropErr),
			OK:       targetGot[8003] == "" && dropErr != nil,
		},
		{
			Mode: "(d) Redirect", Verdict: shim.Redirect,
			Observed: fmt.Sprintf("original got %q, alternate got %q", targetGot[8004], altGot[8004]),
			OK:       targetGot[8004] == "" && altGot[8004] == "probe-8004",
		},
		{
			Mode: "(e) Reflect", Verdict: shim.Reflect,
			Observed: fmt.Sprintf("sink logged %d flows on port 8005", sf.CatchAll.ByPort[8005]),
			OK:       sf.CatchAll.ByPort[8005] == 1,
		},
		{
			Mode: "(f) Rewrite", Verdict: shim.Rewrite,
			Observed: fmt.Sprintf("target got %q, inmate got rewritten %q", targetGot[8006], replies[8006]),
			OK:       targetGot[8006] == "probe-8006" && replies[8006] == "ECHO:PROBE-8006",
		},
	}

	var b strings.Builder
	b.WriteString("Figure 2: flow manipulation modes (flows initiated by an inmate)\n")
	for _, r := range results {
		status := "OK"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-15s %-8s [%s] %s\n", r.Mode, r.Verdict, status, r.Observed)
	}
	return results, b.String(), nil
}
