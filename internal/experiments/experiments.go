// Package experiments regenerates every table and figure from the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each Run*
// function builds the necessary farm(s), drives the workload, and returns
// both structured results and a textual rendering in the paper's format.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/shim"
)

// Table1Row is one regenerated Table 1 entry: the paper's values alongside
// the measured ones.
type Table1Row struct {
	Spec             malware.WormSpec
	MeasuredEvents   int
	MeasuredIncub    time.Duration
	MeasuredConnsPer float64 // redirected flows per completed propagation
}

// RunTable1 reproduces Table 1 for the given specs (pass malware.Table1
// for the full table): each capture runs in a fresh worm honeyfarm; the
// measured incubation is the delay from the seeded infection to the next
// inmate's infection, and events are infections within the observation
// window.
func RunTable1(seed int64, specs []malware.WormSpec, window time.Duration) ([]Table1Row, string, error) {
	var rows []Table1Row
	for i, spec := range specs {
		e, err := farm.NewWormExperiment(seed+int64(i), spec, 4)
		if err != nil {
			return nil, "", err
		}
		e.Farm.Run(30 * time.Second) // boot + leases
		e.Seed()
		e.Farm.Run(window)
		res := e.Result()
		row := Table1Row{Spec: spec, MeasuredEvents: res.Events, MeasuredIncub: res.Incubation}
		// Connections per infection: redirected propagation flows divided
		// by completed propagations.
		var redirected, props int
		for _, rec := range e.Subfarm.Router.Records() {
			if !rec.Inbound && rec.Verdict.Has(shim.Redirect) {
				redirected++
			}
		}
		for _, w := range e.Subfarm.Inmates {
			if worm, ok := w.Specimen.(*malware.Worm); ok && worm != nil {
				props += worm.Propagations
			}
		}
		if props > 0 {
			row.MeasuredConnsPer = float64(redirected) / float64(props)
		}
		rows = append(rows, row)
	}
	return rows, renderTable1(rows), nil
}

func renderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-22s %14s %14s %12s %12s\n",
		"EXECUTABLE", "WORM NAME", "EVENTS(paper)", "EVENTS(meas)", "INCUB(paper)", "INCUB(meas)")
	for _, r := range rows {
		conns := fmt.Sprintf("%d", r.Spec.Conns)
		if r.Spec.ConnsLabel != "" {
			conns = r.Spec.ConnsLabel
		}
		mark := ""
		if r.MeasuredIncub > malware.SlowIncubationThreshold {
			mark = " *" // the paper bolds >3 min
		}
		fmt.Fprintf(&b, "%-16s %-22s %9d / %-4s %9d / %-4.1f %11.1fs %10.1fs%s\n",
			r.Spec.Executable, r.Spec.Name,
			r.Spec.Events, conns,
			r.MeasuredEvents, r.MeasuredConnsPer,
			r.Spec.Incubation.Seconds(), r.MeasuredIncub.Seconds(), mark)
	}
	return b.String()
}
