package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"gq/internal/chaos"
)

// TestRecycleSoak is the recycling pipeline's acceptance run: three
// subfarms of raw-iron inmates cycle detonate → capture → reimage →
// re-admit under the reimage-fault chaos profile. Every injected fault
// must end in a retry or a breaker quarantine (no machine wedges), the
// farm must sustain its cycle floor, containment must hold, and — like
// the chaos soak — the sharded run must produce byte-identical journals
// and identical snapshots at 1, 2 and 4 workers.
func TestRecycleSoak(t *testing.T) {
	profile, err := chaos.Parse("reimage")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11

	var refJournal []byte
	var refSnap any
	for _, workers := range []int{1, 2, 4} {
		out, err := RunRecycleSoak(RecycleConfig{
			Seed: seed, Profile: profile, Sharded: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, problem := range out.Problems {
			t.Errorf("workers=%d: %s", workers, problem)
		}
		t.Logf("workers=%d: cycles=%d (%.1f specimens/day) captures=%d reimages=%d faults=%d retries=%d quarantined=%d lost=%d journal=%dB",
			workers, out.Cycles, out.SpecimensPerDay, out.Captures, out.Reimages,
			out.FaultsInjected, out.Retries, out.Quarantines, out.Lost, len(out.Journal))
		if workers == 1 {
			refJournal, refSnap = out.Journal, out.Snapshot
			continue
		}
		if !bytes.Equal(refJournal, out.Journal) {
			t.Errorf("workers=%d: journal differs from workers=1 (%d vs %d bytes) — the recycling pipeline is not deterministic",
				workers, len(out.Journal), len(refJournal))
		}
		if !reflect.DeepEqual(refSnap, out.Snapshot) {
			t.Errorf("workers=%d: metrics snapshot differs from workers=1", workers)
		}
	}
}
