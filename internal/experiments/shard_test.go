package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"gq/internal/chaos"
)

// TestShardDeterminism is the sharded farm's determinism proof: the full
// chaos soak — loss, reorder, duplication, corruption, flaps, CS crash,
// verdict stall, sink outage, containment probe — run supervised with
// per-subfarm simulation domains at 1, 2 and 4 workers must produce
// byte-identical NDJSON journals, identical metric snapshots, and identical
// per-endpoint health-transition histories. Worker count only decides which
// OS thread runs a domain's window; it must never leak into results.
func TestShardDeterminism(t *testing.T) {
	profile, err := chaos.Parse("soak")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7

	var refJournal []byte
	var refSnap any
	var refHealth map[string][]string
	for _, workers := range []int{1, 2, 4} {
		out, err := RunChaosSoak(ChaosConfig{
			Seed: seed, Profile: profile, Sharded: true, Workers: workers,
			Supervise: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, problem := range out.Problems {
			t.Errorf("workers=%d: %s", workers, problem)
		}
		t.Logf("workers=%d: flows=%d verdicts=%d crashes=%d failclosed=%d probe=[%s] journal=%dB health=%v",
			workers, out.FlowsCreated, out.Verdicts, out.Injector.Crashes,
			out.FlowsFailClosed, out.Probe, len(out.Journal), out.HealthHistory)
		if workers == 1 {
			refJournal, refSnap, refHealth = out.Journal, out.Snapshot, out.HealthHistory
			continue
		}
		if !bytes.Equal(refJournal, out.Journal) {
			t.Errorf("workers=%d: journal differs from workers=1 (%d vs %d bytes) — sharded execution is not deterministic",
				workers, len(out.Journal), len(refJournal))
		}
		if !reflect.DeepEqual(refSnap, out.Snapshot) {
			t.Errorf("workers=%d: metrics snapshot differs from workers=1", workers)
		}
		if !reflect.DeepEqual(refHealth, out.HealthHistory) {
			t.Errorf("workers=%d: health-transition history differs from workers=1:\n  ref: %v\n  got: %v",
				workers, refHealth, out.HealthHistory)
		}
	}
}
