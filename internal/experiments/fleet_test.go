package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFleetLockdownSoak is the supervision tree's end-to-end proof, and
// its determinism proof in the same breath: three subfarms under the
// blackout profile — sink crashes, a controller hang, a recycler wedge,
// and a containment-server kill storm dense enough to quarantine alpha's
// whole plane — must recover every survivable fault through the tree,
// escalate the unsurvivable one through subfarm fail-closed lockdown to
// global dead-man lockdown, hold zero probe escapes before/during/after,
// and drain every flow table empty. Run sharded at 1, 2 and 4 workers on
// both the single-internet and the two-shard external topology: within
// each topology the NDJSON journal must be byte-identical and the
// escalation record DeepEqual — worker count only decides which OS
// thread runs a domain's window; it must never leak into escalation
// order.
func TestFleetLockdownSoak(t *testing.T) {
	const seed = 11

	for _, extShards := range []int{1, 2} {
		var refJournal []byte
		var refEsc map[string][]string
		var refHealth map[string]map[string][]string
		var refSnap any
		for _, workers := range []int{1, 2, 4} {
			out, err := RunFleetSoak(FleetConfig{
				Seed: seed, Sharded: true, Workers: workers, ExtShards: extShards,
			})
			if err != nil {
				t.Fatalf("extShards=%d workers=%d: %v", extShards, workers, err)
			}
			for _, problem := range out.Problems {
				t.Errorf("extShards=%d workers=%d: %s", extShards, workers, problem)
			}
			t.Logf("extShards=%d workers=%d: globalAt=%v drops=%d rearms=%d cycles=%d journal=%dB",
				extShards, workers, out.GlobalLockdownAt, out.LockdownDrops,
				out.Rearms, out.Cycles, len(out.Journal))
			if workers == 1 {
				refJournal, refEsc, refHealth, refSnap =
					out.Journal, out.Escalations, out.Health, out.Snapshot
				continue
			}
			if !bytes.Equal(refJournal, out.Journal) {
				t.Errorf("extShards=%d workers=%d: journal differs from workers=1 (%d vs %d bytes) — escalation is not deterministic",
					extShards, workers, len(out.Journal), len(refJournal))
			}
			if !reflect.DeepEqual(refEsc, out.Escalations) {
				t.Errorf("extShards=%d workers=%d: escalation record differs from workers=1:\n  ref: %v\n  got: %v",
					extShards, workers, refEsc, out.Escalations)
			}
			if !reflect.DeepEqual(refHealth, out.Health) {
				t.Errorf("extShards=%d workers=%d: health-transition history differs from workers=1",
					extShards, workers)
			}
			if !reflect.DeepEqual(refSnap, out.Snapshot) {
				t.Errorf("extShards=%d workers=%d: metrics snapshot differs from workers=1",
					extShards, workers)
			}
		}
	}
}

// TestFleetSoakSerial pins the unsharded farm: the same ladder must run
// on a single root domain (no PostTo hops at all) and still satisfy
// every fleet invariant.
func TestFleetSoakSerial(t *testing.T) {
	out, err := RunFleetSoak(FleetConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, problem := range out.Problems {
		t.Error(problem)
	}
}
