package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"gq/internal/chaos"
	"gq/internal/farm"
	"gq/internal/malware"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/policy"
	"gq/internal/rawiron"
	"gq/internal/smtpx"
)

// RecycleConfig parameterises the recycling soak: several subfarms of
// raw-iron inmates cycling detonate → capture → reimage → re-admit under a
// reimage-fault chaos profile.
type RecycleConfig struct {
	Seed    int64
	Profile chaos.Profile

	// Subfarms and Machines size the farm: Subfarms independent habitats,
	// each with a raw-iron pool of Machines boxes on a shared PXE/TFTP
	// trunk (defaults 3 × 3).
	Subfarms int
	Machines int

	// Duration is the recycling window (default 2 virtual hours). After it
	// the recyclers and fault injection stop, Settle (default 30 min) lets
	// in-flight captures/reimages retry to completion, then a containment
	// probe and a final drain run per subfarm.
	Duration time.Duration
	Settle   time.Duration

	// DetonateFor is each specimen's execution window (default 5 min — the
	// soak compresses the paper's cadence to fit many cycles per run).
	DetonateFor time.Duration

	// MinCycles is the whole-farm completed-cycle floor the soak enforces;
	// MinCyclesPerSubfarm guards against one habitat silently stalling
	// while others carry the total (defaults 20 and 4).
	MinCycles           int
	MinCyclesPerSubfarm int

	// Sharded builds the farm with per-subfarm simulation domains driven
	// by Workers goroutines (0 = GOMAXPROCS). As with the chaos soak, a
	// sharded run's journal is byte-identical across worker counts.
	Sharded bool
	Workers int
}

func (cfg RecycleConfig) withDefaults() RecycleConfig {
	if cfg.Subfarms == 0 {
		cfg.Subfarms = 3
	}
	if cfg.Machines == 0 {
		cfg.Machines = 3
	}
	if cfg.Duration == 0 {
		cfg.Duration = 2 * time.Hour
	}
	if cfg.Settle == 0 {
		cfg.Settle = 30 * time.Minute
	}
	if cfg.DetonateFor == 0 {
		cfg.DetonateFor = 5 * time.Minute
	}
	if cfg.MinCycles == 0 {
		cfg.MinCycles = 20
	}
	if cfg.MinCyclesPerSubfarm == 0 {
		cfg.MinCyclesPerSubfarm = 4
	}
	return cfg
}

// RecycleOutcome reports the run and the lifecycle-invariant checks.
type RecycleOutcome struct {
	Farm      *farm.Farm
	Subfarms  []*farm.Subfarm
	Injectors []*chaos.Injector
	Probes    []*farm.ProbeOutcome

	// Journal is the full NDJSON stream; byte-identical across runs with
	// the same (seed, profile) at any worker count.
	Journal  []byte
	Snapshot *obs.Snapshot

	// Farm-wide lifecycle accounting, summed over every subfarm's
	// raw-iron controller and recycler.
	Cycles, Lost                   int
	Reimages, Captures             int
	Failures, Retries, Quarantines int
	FaultsInjected                 int

	// SpecimensPerDay is the sustained recycling throughput: completed
	// cycles scaled to a 24-hour day over the soak's active window.
	SpecimensPerDay float64

	// Problems lists every violated invariant; empty means the pipeline
	// sustained its cadence with no wedged machines and no escapes.
	Problems []string
}

// RunRecycleSoak builds Subfarms habitats of raw-iron inmates, runs their
// recycling pipelines under the reimage-fault profile for Duration, then
// stops injection, settles, probes containment, and drains. It checks the
// lifecycle invariants: the cycle floors hold, every injected fault was
// retried or breaker-quarantined (no machine left busy or in a non-terminal
// state), members lost from rotation match breaker trips exactly, counters
// reconcile with the controllers' own accounting, no probe traffic escapes,
// and every flow table drains empty.
func RunRecycleSoak(cfg RecycleConfig) (*RecycleOutcome, error) {
	cfg = cfg.withDefaults()
	var f *farm.Farm
	if cfg.Sharded {
		f = farm.NewSharded(cfg.Seed, cfg.Workers)
	} else {
		f = farm.New(cfg.Seed)
	}
	out := &RecycleOutcome{Farm: f}

	// Journal first, so the determinism comparison covers the whole run.
	var journal bytes.Buffer
	sink := f.Sim.Obs().Journal.AttachNDJSON(&journal)

	ccAddr := netstack.MustParseAddr("50.8.207.91")
	ccHost := f.AddExternalHost("steephost", ccAddr)
	if _, err := malware.NewCCServer(ccHost, malware.CCConfig{
		Template: "pharma special",
		Targets: []netstack.Addr{
			netstack.MustParseAddr("203.0.113.25"),
			netstack.MustParseAddr("203.0.113.26"),
		},
		Forbidden: []string{"DDOS 203.0.113.99"},
	}); err != nil {
		return nil, err
	}

	recyclers := make([]*farm.Recycler, 0, cfg.Subfarms)
	for i := 0; i < cfg.Subfarms; i++ {
		lo := uint16(16 + 16*i)
		// Inmate VLANs [lo, lo+Machines-1]; headroom above for the
		// containment probe's own inmate.
		policyText := fmt.Sprintf("[VLAN %d-%d]\n", lo, lo+uint16(cfg.Machines)-1) +
			"Decider = Rustock\nInfection = rustock.100921.*.exe\n"
		sf, err := f.AddSubfarm(farm.SubfarmConfig{
			Name:   fmt.Sprintf("Iron%d", i),
			VLANLo: lo, VLANHi: lo + uint16(cfg.Machines) + 3,
			ServiceVLAN:  lo - 5,
			GlobalPool:   netstack.MustParsePrefix(fmt.Sprintf("192.0.%d.0/24", 2+i)),
			InfraPool:    netstack.MustParsePrefix(fmt.Sprintf("192.0.%d.0/24", 32+i)),
			PolicyConfig: policyText,
			SampleLibrary: []*policy.Sample{
				policy.NewSample("rustock.100921.001.exe", "rustock", []byte("MZ-rustock-1")),
			},
			RepeatBatches: true,
			CCHosts: map[string]policy.AddrPort{
				"Rustock": {Addr: ccAddr, Port: 443},
			},
			SinkDropProb:   0.2,
			SinkStrictness: smtpx.Lenient,
		})
		if err != nil {
			return nil, err
		}
		out.Subfarms = append(out.Subfarms, sf)

		// Two concurrent netboots per subfarm: the third box queues, so the
		// soak exercises the FIFO slot path alongside trunk contention.
		sf.EnableRawIron(rawiron.Config{MaxConcurrent: 2})
		rec := sf.AttachRecycler(farm.RecyclerConfig{
			DetonateFor: cfg.DetonateFor, Capture: true,
		})
		for j := 0; j < cfg.Machines; j++ {
			fi, _, err := sf.AddRawIronInmate(fmt.Sprintf("iron-%d", j), "winxp-golden")
			if err != nil {
				return nil, err
			}
			if err := rec.Manage(fi); err != nil {
				return nil, err
			}
		}
		rec.Start()
		recyclers = append(recyclers, rec)
	}

	if cfg.Profile.Name != "" {
		for _, sf := range out.Subfarms {
			out.Injectors = append(out.Injectors, chaos.Apply(sf, cfg.Profile))
		}
	}

	f.Run(cfg.Duration)

	// Wind down in dependency order: recyclers stop opening detonation
	// windows, injection stops (future retries run fault-free), and the
	// settle window lets every in-flight capture/reimage — including ones
	// mid-backoff — reach a terminal state.
	for _, rec := range recyclers {
		rec.Stop()
	}
	for _, inj := range out.Injectors {
		inj.Stop()
	}
	f.Run(cfg.Settle)

	for _, sf := range out.Subfarms {
		probe, err := farm.RunContainmentProbe(f, sf, nil, 2*time.Minute)
		if err != nil {
			return nil, err
		}
		out.Probes = append(out.Probes, probe)
	}

	for _, sf := range out.Subfarms {
		vlans := make([]int, 0, len(sf.Inmates))
		for vlan := range sf.Inmates {
			vlans = append(vlans, int(vlan))
		}
		sort.Ints(vlans)
		for _, vlan := range vlans {
			sf.Inmates[uint16(vlan)].Terminate()
		}
	}
	f.Run(12 * time.Minute)

	if err := sink.Flush(); err != nil {
		return nil, err
	}
	out.Journal = append([]byte(nil), journal.Bytes()...)

	// --- Invariant checks ---
	bad := func(format string, args ...any) {
		out.Problems = append(out.Problems, fmt.Sprintf(format, args...))
	}

	for i, sf := range out.Subfarms {
		rec, ri := recyclers[i], sf.RawIron
		out.Cycles += rec.Cycles
		out.Lost += rec.Lost
		out.Reimages += ri.Reimages
		out.Captures += ri.Captures
		out.Failures += ri.Failures
		out.Retries += ri.Retries
		out.Quarantines += ri.Quarantines
		out.FaultsInjected += ri.FaultsInjected

		if rec.Cycles < cfg.MinCyclesPerSubfarm {
			bad("%s completed %d cycles, want >= %d — the habitat's pipeline stalled",
				sf.Name, rec.Cycles, cfg.MinCyclesPerSubfarm)
		}
		// Supervision invariant: every fault path ends terminal. A busy
		// machine after the settle window is a wedged state machine; any
		// state but Running/Quarantined is a transition that never landed.
		for _, m := range ri.Machines() {
			if m.Busy() {
				bad("%s machine %s still busy after settle (state %v)", sf.Name, m.Name, m.State)
			}
			if m.State != rawiron.Running && m.State != rawiron.Quarantined {
				bad("%s machine %s in non-terminal state %v", sf.Name, m.Name, m.State)
			}
		}
		// Every failure is either a retry or a breaker trip, and every
		// trip dropped exactly one member from rotation.
		if ri.Failures != ri.Retries+ri.Quarantines {
			bad("%s failure accounting drift: %d failures != %d retries + %d quarantines",
				sf.Name, ri.Failures, ri.Retries, ri.Quarantines)
		}
		if rec.Lost != ri.Quarantines {
			bad("%s lost %d members but breaker tripped %d times", sf.Name, rec.Lost, ri.Quarantines)
		}
		if n := sf.Router.ActiveFlows(); n != 0 {
			bad("%s flow table leaked: %d entries after drain", sf.Name, n)
		}
		if escaped := out.Probes[i].Escaped(); len(escaped) > 0 {
			bad("%s containment probe escaped: %v", sf.Name, escaped)
		}
	}

	if out.Cycles < cfg.MinCycles {
		bad("farm completed %d cycles, want >= %d", out.Cycles, cfg.MinCycles)
	}
	if cfg.Profile.ReimageFaultsActive() {
		if out.FaultsInjected == 0 {
			bad("reimage-fault profile active but no faults injected")
		}
		// The pipeline rolls at most one fault per attempt and every
		// injected fault fails that attempt; nominal timings never miss a
		// deadline on their own, so the two counts must agree exactly.
		if out.Failures != out.FaultsInjected {
			bad("fault accounting drift: %d injected faults but %d attempt failures",
				out.FaultsInjected, out.Failures)
		}
	}

	snap := f.Sim.Obs().Snapshot()
	out.Snapshot = snap
	if got := snap.Counter("rawiron.retries"); got != uint64(out.Retries) {
		bad("telemetry drift: rawiron.retries counter %d, controllers counted %d", got, out.Retries)
	}
	if got := snap.Counter("rawiron.quarantined"); got != uint64(out.Quarantines) {
		bad("telemetry drift: rawiron.quarantined counter %d, controllers counted %d", got, out.Quarantines)
	}
	if got := snap.Counter("rawiron.faults_injected"); got != uint64(out.FaultsInjected) {
		bad("telemetry drift: rawiron.faults_injected counter %d, controllers counted %d", got, out.FaultsInjected)
	}
	if got := snap.Counter("lifecycle.recycled"); got != uint64(out.Cycles) {
		bad("telemetry drift: lifecycle.recycled counter %d, recyclers counted %d", got, out.Cycles)
	}
	// The journal must carry the same story the counters tell: one
	// recycled event per completed cycle, one retry event per retry.
	if got := bytes.Count(out.Journal, []byte(`"type":"lifecycle.recycled"`)); got != out.Cycles {
		bad("journal drift: %d lifecycle.recycled events, recyclers counted %d", got, out.Cycles)
	}
	if got := bytes.Count(out.Journal, []byte(`"type":"rawiron.retry"`)); got != out.Retries {
		bad("journal drift: %d rawiron.retry events, controllers counted %d", got, out.Retries)
	}
	if problems := f.Reporter(false).CrossCheck(); len(problems) != 0 {
		bad("reporter cross-check: %v", problems)
	}

	active := cfg.Duration + cfg.Settle
	out.SpecimensPerDay = float64(out.Cycles) * float64(24*time.Hour) / float64(active)
	return out, nil
}
