package smtpx

import (
	"strings"
	"testing"
	"time"

	"gq/internal/host"
	"gq/internal/netsim"
	"gq/internal/netstack"
	"gq/internal/sim"
)

// scripted runs an engine against a sequence of client lines and returns
// the replies.
func scripted(s Strictness, lines []string) (replies []string, envs []*Envelope, eng *Engine) {
	eng = NewEngine(s, func(line string) { replies = append(replies, line) }, nil)
	eng.OnMessage = func(env *Envelope) *Reply { envs = append(envs, env); return nil }
	eng.Greet("220 mx.example.com ESMTP")
	for _, l := range lines {
		eng.Feed([]byte(l + "\r\n"))
	}
	return
}

func codes(replies []string) []int {
	var out []int
	for _, r := range replies {
		out = append(out, replyCode(r))
	}
	return out
}

func TestEngineHappyPath(t *testing.T) {
	replies, envs, _ := scripted(Strict, []string{
		"HELO spambot.example",
		"MAIL FROM:<grum@spam.biz>",
		"RCPT TO:<victim@example.org>",
		"DATA",
		"Subject: cheap pills",
		"",
		"buy now",
		".",
		"QUIT",
	})
	want := []int{220, 250, 250, 250, 354, 250, 221}
	got := codes(replies)
	if len(got) != len(want) {
		t.Fatalf("replies %v", replies)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply[%d] = %d, want %d (%v)", i, got[i], want[i], replies)
		}
	}
	if len(envs) != 1 {
		t.Fatalf("%d envelopes", len(envs))
	}
	env := envs[0]
	if env.From != "grum@spam.biz" || len(env.Rcpts) != 1 || env.Rcpts[0] != "victim@example.org" {
		t.Fatalf("envelope %+v", env)
	}
	if !strings.Contains(string(env.Data), "buy now") {
		t.Fatalf("data %q", env.Data)
	}
}

func TestStrictRejectsRepeatedHelo(t *testing.T) {
	replies, _, eng := scripted(Strict, []string{"HELO a", "HELO a", "HELO a"})
	got := codes(replies)
	if got[1] != 250 || got[2] != 503 || got[3] != 503 {
		t.Fatalf("replies %v", replies)
	}
	if eng.SequenceViols != 2 {
		t.Errorf("SequenceViols = %d", eng.SequenceViols)
	}
}

func TestLenientAcceptsRepeatedHelo(t *testing.T) {
	replies, envs, _ := scripted(Lenient, []string{
		"HELO wergvan", "HELO wergvan",
		"MAIL FROM:<w@x.com>", "RCPT TO:<v@y.com>", "DATA", "hi", ".",
	})
	got := codes(replies)
	for i, c := range got {
		if c >= 400 {
			t.Fatalf("lenient engine rejected line %d: %v", i, replies)
		}
	}
	if len(envs) != 1 {
		t.Fatalf("DATA stage never reached: %v", replies)
	}
}

func TestStrictRejectsSloppyAddresses(t *testing.T) {
	for _, stanza := range []string{
		"MAIL FROM: <a@b.com>", // space after colon
		"MAIL FROM:a@b.com",    // no brackets
		"MAIL FROM a@b.com",    // no colon
	} {
		replies, _, _ := scripted(Strict, []string{"HELO h", stanza})
		if got := codes(replies); got[2] != 501 {
			t.Errorf("strict accepted %q: %v", stanza, replies)
		}
	}
	// Canonical form accepted.
	replies, _, _ := scripted(Strict, []string{"HELO h", "MAIL FROM:<a@b.com>"})
	if got := codes(replies); got[2] != 250 {
		t.Errorf("strict rejected canonical form: %v", replies)
	}
}

func TestLenientAcceptsSloppyAddresses(t *testing.T) {
	for _, stanza := range []string{
		"MAIL FROM: <a@b.com>",
		"MAIL FROM:a@b.com",
		"MAIL FROM a@b.com",
		"mail from:<a@b.com>",
	} {
		replies, _, _ := scripted(Lenient, []string{"HELO h", stanza})
		if got := codes(replies); got[2] != 250 {
			t.Errorf("lenient rejected %q: %v", stanza, replies)
		}
	}
}

func TestStrictRequiresHeloBeforeMail(t *testing.T) {
	replies, _, _ := scripted(Strict, []string{"MAIL FROM:<a@b.com>"})
	if got := codes(replies); got[1] != 503 {
		t.Fatalf("replies %v", replies)
	}
}

func TestNullReversePathAllowed(t *testing.T) {
	replies, _, _ := scripted(Strict, []string{"HELO h", "MAIL FROM:<>"})
	if got := codes(replies); got[2] != 250 {
		t.Fatalf("bounce sender rejected: %v", replies)
	}
}

func TestRcptOverride(t *testing.T) {
	var replies []string
	eng := NewEngine(Lenient, func(l string) { replies = append(replies, l) }, nil)
	eng.OnRcpt = func(addr string) *Reply {
		if strings.HasSuffix(addr, "@gmail.com") {
			return &Reply{550, "mailbox unavailable"}
		}
		return nil
	}
	eng.Greet("220 x")
	for _, l := range []string{"HELO h", "MAIL FROM:<s@x.com>", "RCPT TO:<a@gmail.com>", "RCPT TO:<b@y.com>", "DATA"} {
		eng.Feed([]byte(l + "\r\n"))
	}
	got := codes(replies)
	if got[3] != 550 || got[4] != 250 || got[5] != 354 {
		t.Fatalf("replies %v", replies)
	}
}

func TestDotUnstuffing(t *testing.T) {
	_, envs, _ := scripted(Lenient, []string{
		"HELO h", "MAIL FROM:<a@b.c>", "RCPT TO:<d@e.f>", "DATA",
		"..leading dot", ".",
	})
	if len(envs) != 1 || !strings.HasPrefix(string(envs[0].Data), ".leading dot") {
		t.Fatalf("unstuffing failed: %+v", envs)
	}
}

func TestRset(t *testing.T) {
	replies, envs, _ := scripted(Lenient, []string{
		"HELO h", "MAIL FROM:<a@b.c>", "RSET",
		"MAIL FROM:<x@y.z>", "RCPT TO:<d@e.f>", "DATA", "m", ".",
	})
	if len(envs) != 1 || envs[0].From != "x@y.z" {
		t.Fatalf("RSET broke session: %v %+v", replies, envs)
	}
}

func TestUnknownCommand(t *testing.T) {
	replies, _, eng := scripted(Strict, []string{"HELO h", "XYZZY"})
	if got := codes(replies); got[2] != 500 {
		t.Fatalf("replies %v", replies)
	}
	if eng.SyntaxErrors != 1 {
		t.Errorf("SyntaxErrors = %d", eng.SyntaxErrors)
	}
}

// --- end-to-end client/server over the simulated network ---

func mailNet(t *testing.T) (*sim.Simulator, *host.Host, *host.Host) {
	t.Helper()
	s := sim.New(1)
	sw := netsim.NewSwitch(s, "sw")
	bot := host.New(s, "bot", netstack.MAC{2, 0, 0, 0, 0, 1})
	mx := host.New(s, "mx", netstack.MAC{2, 0, 0, 0, 0, 2})
	netsim.Connect(sw.AddAccessPort("bot", 10), bot.NIC(), 0)
	netsim.Connect(sw.AddAccessPort("mx", 10), mx.NIC(), 0)
	bot.ConfigureStatic(netstack.MustParseAddr("10.0.0.1"), 24, 0)
	mx.ConfigureStatic(netstack.MustParseAddr("10.0.0.2"), 24, 0)
	return s, bot, mx
}

func TestClientDeliversMultipleMessages(t *testing.T) {
	s, bot, mx := mailNet(t)
	srv := &Server{Banner: "220 mx.example.com ESMTP", Strictness: Lenient}
	if err := srv.Serve(mx, 25); err != nil {
		t.Fatal(err)
	}
	var delivered int
	var doneErr error
	msgs := []Message{
		{From: "a@spam.biz", Rcpts: []string{"v1@x.com"}, Data: []byte("one")},
		{From: "a@spam.biz", Rcpts: []string{"v2@x.com", "v3@x.com"}, Data: []byte("two")},
		{From: "a@spam.biz", Rcpts: []string{"v4@x.com"}, Data: []byte("three")},
	}
	Send(bot, mx.Addr(), 25, ClientConfig{
		Helo: "bot", Messages: msgs,
		OnDone: func(n int, err error) { delivered, doneErr = n, err },
	})
	s.RunFor(time.Minute)
	if doneErr != nil {
		t.Fatal(doneErr)
	}
	if delivered != 3 || srv.Envelopes != 3 || srv.Sessions != 1 {
		t.Fatalf("delivered=%d envelopes=%d sessions=%d", delivered, srv.Envelopes, srv.Sessions)
	}
}

func TestSloppyClientFailsAgainstStrictServer(t *testing.T) {
	// The §7.1 protocol-violations shape: connection-level activity looks
	// healthy but no DATA stage is ever reached against a strict sink.
	s, bot, mx := mailNet(t)
	srv := &Server{Banner: "220 mx ESMTP", Strictness: Strict}
	srv.Serve(mx, 25)
	var delivered int
	Send(bot, mx.Addr(), 25, ClientConfig{
		Helo: "bot", RepeatHelo: 2, Style: StyleBare,
		Messages: []Message{{From: "a@b.c", Rcpts: []string{"v@x.com"}, Data: []byte("m")}},
		OnDone:   func(n int, err error) { delivered = n },
	})
	s.RunFor(time.Minute)
	if delivered != 0 || srv.Envelopes != 0 {
		t.Fatalf("strict server accepted sloppy client: delivered=%d", delivered)
	}

	// Same client against a lenient server succeeds.
	srv2 := &Server{Banner: "220 mx ESMTP", Strictness: Lenient}
	srv2.Serve(mx, 2525)
	var delivered2 int
	Send(bot, mx.Addr(), 2525, ClientConfig{
		Helo: "bot", RepeatHelo: 2, Style: StyleBare,
		Messages: []Message{{From: "a@b.c", Rcpts: []string{"v@x.com"}, Data: []byte("m")}},
		OnDone:   func(n int, err error) { delivered2 = n },
	})
	s.RunFor(time.Minute)
	if delivered2 != 1 {
		t.Fatalf("lenient server rejected sloppy client: delivered=%d", delivered2)
	}
}

func TestClientBannerRejection(t *testing.T) {
	s, bot, mx := mailNet(t)
	srv := &Server{Banner: "220 sink.gq.local", Strictness: Lenient}
	srv.Serve(mx, 25)
	var doneErr error
	Send(bot, mx.Addr(), 25, ClientConfig{
		Helo: "bot",
		OnBanner: func(b string) bool {
			return strings.Contains(b, "gsmtp") // wants a Google banner
		},
		Messages: []Message{{From: "a@b.c", Rcpts: []string{"v@x.com"}, Data: []byte("m")}},
		OnDone:   func(n int, err error) { doneErr = err },
	})
	s.RunFor(time.Minute)
	if doneErr == nil {
		t.Fatal("client should abort on unexpected banner")
	}
	if srv.Envelopes != 0 {
		t.Fatal("message delivered despite banner rejection")
	}
}

func TestClientRetriesNextRcptOnReject(t *testing.T) {
	s, bot, mx := mailNet(t)
	srv := &Server{Banner: "220 mx", Strictness: Lenient}
	srv.OnMessage = nil
	srv.Serve(mx, 25)
	// Server engine hook: reject first recipient only.
	// Simpler: use engine-level OnRcpt via custom listen.
	mx.Unlisten(25)
	var envs []*Envelope
	mx.Listen(25, func(c *host.Conn) {
		e := NewEngine(Lenient, func(l string) { c.Write([]byte(l + "\r\n")) }, func() { c.Close() })
		e.OnRcpt = func(addr string) *Reply {
			if addr == "bad@x.com" {
				return &Reply{550, "no such user"}
			}
			return nil
		}
		e.OnMessage = func(env *Envelope) *Reply { envs = append(envs, env); return nil }
		c.OnData = func(d []byte) { e.Feed(d) }
		c.OnPeerClose = func() { c.Close() }
		e.Greet("220 mx")
	})
	var delivered int
	Send(bot, mx.Addr(), 25, ClientConfig{
		Helo: "bot",
		Messages: []Message{{
			From: "a@b.c", Rcpts: []string{"bad@x.com", "good@x.com"}, Data: []byte("m"),
		}},
		OnDone: func(n int, err error) { delivered = n },
	})
	s.RunFor(time.Minute)
	if delivered != 1 || len(envs) != 1 || len(envs[0].Rcpts) != 1 || envs[0].Rcpts[0] != "good@x.com" {
		t.Fatalf("delivered=%d envs=%+v", delivered, envs)
	}
}
