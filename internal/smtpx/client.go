package smtpx

import (
	"fmt"
	"strings"

	"gq/internal/host"
	"gq/internal/netstack"
)

// AddrStyle is how a client formats MAIL FROM / RCPT TO stanzas. Real
// spambot engines vary here, which is what broke GQ's first strict sink.
type AddrStyle int

const (
	// StyleRFC is "MAIL FROM:<user@host>".
	StyleRFC AddrStyle = iota
	// StyleNoBrackets is "MAIL FROM:user@host".
	StyleNoBrackets
	// StyleSpaceColon is "MAIL FROM: <user@host>".
	StyleSpaceColon
	// StyleBare is "MAIL FROM user@host" (no colon, no brackets).
	StyleBare
)

func formatStanza(keyword, addr string, style AddrStyle) string {
	switch style {
	case StyleNoBrackets:
		return fmt.Sprintf("%s:%s", keyword, addr)
	case StyleSpaceColon:
		return fmt.Sprintf("%s: <%s>", keyword, addr)
	case StyleBare:
		return fmt.Sprintf("%s %s", keyword, addr)
	default:
		return fmt.Sprintf("%s:<%s>", keyword, addr)
	}
}

// Message is an outbound mail.
type Message struct {
	From  string
	Rcpts []string
	Data  []byte
}

// ClientConfig shapes a spam delivery session.
type ClientConfig struct {
	Helo     string
	HeloVerb string // "HELO" (default) or "EHLO"
	// RepeatHelo >1 sends the greeting that many times, a protocol
	// violation some bot families exhibit.
	RepeatHelo int
	Style      AddrStyle
	Messages   []Message
	// OnBanner inspects the server greeting; returning false aborts the
	// session before HELO (Waledac-style banner sensitivity).
	OnBanner func(banner string) bool
	// OnDelivered fires per message with the end-of-DATA reply code.
	OnDelivered func(idx int, code int)
	// OnDone fires once with the number of fully delivered messages; err
	// is non-nil for connection-level failures.
	OnDone func(delivered int, err error)
}

// clientSession drives the SMTP dialog over one connection.
type clientSession struct {
	cfg       ClientConfig
	conn      *host.Conn
	buf       []byte
	stage     int // 0 banner, 1 helo, 2 mail, 3 rcpt, 4 data-go, 5 data-sent, 6 quit
	heloLeft  int
	msgIdx    int
	rcptIdx   int
	delivered int
	done      bool
}

// Send opens a connection to dst:port and runs the configured session.
func Send(h *host.Host, dst netstack.Addr, port uint16, cfg ClientConfig) {
	if cfg.HeloVerb == "" {
		cfg.HeloVerb = "HELO"
	}
	if cfg.RepeatHelo < 1 {
		cfg.RepeatHelo = 1
	}
	s := &clientSession{cfg: cfg, heloLeft: cfg.RepeatHelo}
	s.conn = h.Dial(dst, port)
	s.conn.OnData = s.feed
	s.conn.OnClose = func(err error) { s.finish(err) }
	s.conn.OnPeerClose = func() { s.conn.Close() }
}

func (s *clientSession) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	if s.cfg.OnDone != nil {
		if err == nil && s.delivered < len(s.cfg.Messages) && s.stage != 6 {
			err = fmt.Errorf("smtpx: session ended at stage %d", s.stage)
		}
		s.cfg.OnDone(s.delivered, err)
	}
}

func (s *clientSession) writeLine(line string) { s.conn.Write([]byte(line + "\r\n")) }

func (s *clientSession) feed(data []byte) {
	s.buf = append(s.buf, data...)
	for {
		nl := strings.IndexByte(string(s.buf), '\n')
		if nl < 0 {
			return
		}
		line := strings.TrimRight(string(s.buf[:nl]), "\r")
		s.buf = s.buf[nl+1:]
		s.handleReply(line)
		if s.done {
			return
		}
	}
}

func replyCode(line string) int {
	if len(line) < 3 {
		return 0
	}
	code := 0
	for _, c := range line[:3] {
		if c < '0' || c > '9' {
			return 0
		}
		code = code*10 + int(c-'0')
	}
	return code
}

func (s *clientSession) handleReply(line string) {
	code := replyCode(line)
	switch s.stage {
	case 0: // banner
		if s.cfg.OnBanner != nil && !s.cfg.OnBanner(line) {
			s.conn.Close()
			s.finish(fmt.Errorf("smtpx: banner rejected by client"))
			return
		}
		if code != 220 {
			s.quit()
			return
		}
		for i := 0; i < s.heloLeft; i++ {
			s.writeLine(s.cfg.HeloVerb + " " + s.cfg.Helo)
		}
		s.stage = 1
	case 1: // HELO replies (possibly several)
		s.heloLeft--
		if code >= 400 {
			s.quit()
			return
		}
		if s.heloLeft <= 0 {
			s.nextMessage()
		}
	case 2: // MAIL FROM reply
		if code >= 400 {
			s.skipMessage(code)
			return
		}
		s.rcptIdx = 0
		s.sendRcpt()
	case 3: // RCPT TO reply
		if code >= 400 {
			// Try remaining recipients; if none accepted, skip message.
			s.rcptIdx++
			if s.rcptIdx < len(s.currentMsg().Rcpts) {
				s.sendRcpt()
				return
			}
			s.skipMessage(code)
			return
		}
		s.rcptIdx++
		if s.rcptIdx < len(s.currentMsg().Rcpts) {
			s.sendRcpt()
			return
		}
		s.writeLine("DATA")
		s.stage = 4
	case 4: // DATA go-ahead
		if code != 354 {
			s.skipMessage(code)
			return
		}
		s.sendBody()
		s.stage = 5
	case 5: // end-of-data reply
		if code < 400 {
			s.delivered++
		}
		if s.cfg.OnDelivered != nil {
			s.cfg.OnDelivered(s.msgIdx, code)
		}
		s.msgIdx++
		s.nextMessage()
	case 6: // QUIT reply
		s.conn.Close()
		s.finish(nil)
	}
}

func (s *clientSession) currentMsg() *Message { return &s.cfg.Messages[s.msgIdx] }

func (s *clientSession) nextMessage() {
	if s.msgIdx >= len(s.cfg.Messages) {
		s.quit()
		return
	}
	s.writeLine(formatStanza("MAIL FROM", s.currentMsg().From, s.cfg.Style))
	s.stage = 2
}

func (s *clientSession) skipMessage(code int) {
	if s.cfg.OnDelivered != nil {
		s.cfg.OnDelivered(s.msgIdx, code)
	}
	s.msgIdx++
	s.nextMessage()
}

func (s *clientSession) sendRcpt() {
	s.writeLine(formatStanza("RCPT TO", s.currentMsg().Rcpts[s.rcptIdx], s.cfg.Style))
	s.stage = 3
}

func (s *clientSession) sendBody() {
	for _, line := range strings.Split(string(s.currentMsg().Data), "\n") {
		if strings.HasPrefix(line, ".") {
			line = "." + line // dot-stuffing
		}
		s.writeLine(line)
	}
	s.writeLine(".")
}

func (s *clientSession) quit() {
	s.writeLine("QUIT")
	s.stage = 6
}
