// Package smtpx implements SMTP engines for the farm: a server-side
// protocol state machine with configurable strictness, and a client used by
// the simulated spambots.
//
// Strictness matters operationally (§7.1 "protocol violations"): GQ's
// original sink "followed the SMTP specification too closely, preventing
// the protocol state machine from ever reaching the DATA stage" for some
// bot families. The discrepancies were mundane — repeated HELO/EHLO
// greetings, and the format of addresses in MAIL FROM and RCPT TO stanzas
// (with or without colons, with or without angle brackets). Both engines
// here model exactly those variations.
package smtpx

import (
	"fmt"
	"strings"
)

// Strictness selects how closely the server engine follows RFC 821.
type Strictness int

const (
	// Strict rejects repeated greetings and malformed address stanzas.
	Strict Strictness = iota
	// Lenient tolerates the violations real spambots emit.
	Lenient
)

// Envelope is a message collected by the server engine.
type Envelope struct {
	Helo  string
	From  string
	Rcpts []string
	Data  []byte
}

// Reply is an SMTP response line.
type Reply struct {
	Code int
	Text string
}

func (r Reply) String() string { return fmt.Sprintf("%d %s", r.Code, r.Text) }

// Engine is a server-side SMTP session state machine. The caller feeds it
// raw stream bytes; it emits reply lines through the write callback. The
// greeting banner is sent explicitly via Greet, which lets a sink defer it
// (e.g. while grabbing the real target's banner, §7.1 "satisfying
// fidelity").
type Engine struct {
	// Hooks; all optional. The reply-returning hooks may override the
	// default acceptance codes, which GQ's exploratory containment uses to
	// expose specimens to specific SMTP error conditions.
	OnHelo func(verb, arg string)
	OnMail func(addr string) *Reply
	OnRcpt func(addr string) *Reply
	// OnMessage receives each completed envelope; its reply answers the
	// end-of-DATA dot.
	OnMessage func(env *Envelope) *Reply
	OnQuit    func()

	strictness Strictness
	write      func(line string)
	closeConn  func()

	state   int // 0 start, 1 greeted, 2 mail, 3 rcpt, 4 data
	helo    string
	from    string
	rcpts   []string
	data    []byte
	buf     []byte
	greeted bool

	// Counters for reports.
	Envelopes     int
	HeloCount     int
	SyntaxErrors  int
	SequenceViols int
}

const (
	stStart = iota
	stGreeted
	stMail
	stRcpt
	stData
)

// NewEngine creates a session engine. write emits a reply line (without
// CRLF); closeConn is invoked after QUIT's reply.
func NewEngine(s Strictness, write func(line string), closeConn func()) *Engine {
	return &Engine{strictness: s, write: write, closeConn: closeConn}
}

// Greet sends the service banner and opens the session.
func (e *Engine) Greet(banner string) {
	if e.greeted {
		return
	}
	e.greeted = true
	e.write(banner)
}

func (e *Engine) reply(code int, text string) { e.write(fmt.Sprintf("%d %s", code, text)) }

// Feed consumes stream bytes, processing complete lines.
func (e *Engine) Feed(data []byte) {
	e.buf = append(e.buf, data...)
	for {
		nl := -1
		for i, b := range e.buf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return
		}
		line := strings.TrimRight(string(e.buf[:nl]), "\r")
		e.buf = e.buf[nl+1:]
		e.handleLine(line)
	}
}

func (e *Engine) handleLine(line string) {
	if e.state == stData {
		if line == "." {
			env := &Envelope{Helo: e.helo, From: e.from, Rcpts: e.rcpts, Data: e.data}
			e.Envelopes++
			r := Reply{250, "OK queued"}
			if e.OnMessage != nil {
				if o := e.OnMessage(env); o != nil {
					r = *o
				}
			}
			e.reply(r.Code, r.Text)
			e.state = stGreeted
			e.from, e.rcpts, e.data = "", nil, nil
			return
		}
		// Dot-unstuffing per RFC 821 §4.5.2.
		if strings.HasPrefix(line, "..") {
			line = line[1:]
		}
		e.data = append(e.data, line...)
		e.data = append(e.data, '\n')
		return
	}

	verb, arg := splitVerb(line)
	switch verb {
	case "HELO", "EHLO":
		e.HeloCount++
		if e.state != stStart && e.strictness == Strict {
			e.SequenceViols++
			e.reply(503, "duplicate HELO/EHLO")
			return
		}
		e.helo = arg
		e.state = stGreeted
		if e.OnHelo != nil {
			e.OnHelo(verb, arg)
		}
		e.reply(250, "Hello "+arg)

	case "MAIL":
		if e.state == stStart && e.strictness == Strict {
			e.SequenceViols++
			e.reply(503, "send HELO first")
			return
		}
		addr, ok := parseAddrStanza(arg, "FROM", e.strictness)
		if !ok {
			e.SyntaxErrors++
			e.reply(501, "syntax error in MAIL FROM")
			return
		}
		e.from = addr
		e.rcpts = nil
		e.state = stMail
		r := Reply{250, "sender OK"}
		if e.OnMail != nil {
			if o := e.OnMail(addr); o != nil {
				r = *o
			}
		}
		e.reply(r.Code, r.Text)
		if r.Code >= 400 {
			e.state = stGreeted
		}

	case "RCPT":
		if e.state != stMail && e.state != stRcpt {
			e.SequenceViols++
			e.reply(503, "need MAIL first")
			return
		}
		addr, ok := parseAddrStanza(arg, "TO", e.strictness)
		if !ok {
			e.SyntaxErrors++
			e.reply(501, "syntax error in RCPT TO")
			return
		}
		r := Reply{250, "recipient OK"}
		if e.OnRcpt != nil {
			if o := e.OnRcpt(addr); o != nil {
				r = *o
			}
		}
		if r.Code < 400 {
			e.rcpts = append(e.rcpts, addr)
			e.state = stRcpt
		}
		e.reply(r.Code, r.Text)

	case "DATA":
		if e.state != stRcpt {
			e.SequenceViols++
			e.reply(503, "need RCPT first")
			return
		}
		e.state = stData
		e.reply(354, "End data with <CR><LF>.<CR><LF>")

	case "RSET":
		e.from, e.rcpts, e.data = "", nil, nil
		if e.state != stStart {
			e.state = stGreeted
		}
		e.reply(250, "OK")

	case "NOOP":
		e.reply(250, "OK")

	case "QUIT":
		e.reply(221, "Bye")
		if e.OnQuit != nil {
			e.OnQuit()
		}
		if e.closeConn != nil {
			e.closeConn()
		}

	default:
		e.SyntaxErrors++
		e.reply(500, "command not recognized")
	}
}

func splitVerb(line string) (string, string) {
	line = strings.TrimSpace(line)
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return strings.ToUpper(line), ""
	}
	return strings.ToUpper(line[:sp]), strings.TrimSpace(line[sp+1:])
}

// parseAddrStanza extracts the address from "FROM:<a@b>" and its sloppy
// variants. Strict mode requires the canonical colon + angle brackets form.
func parseAddrStanza(arg, keyword string, s Strictness) (string, bool) {
	rest := arg
	if !strings.HasPrefix(strings.ToUpper(rest), keyword) {
		return "", false
	}
	rest = rest[len(keyword):]
	hasColon := strings.HasPrefix(rest, ":")
	if hasColon {
		rest = rest[1:]
	}
	hadSpace := strings.TrimLeft(rest, " ") != rest
	rest = strings.TrimSpace(rest)
	hasBrackets := strings.HasPrefix(rest, "<") && strings.HasSuffix(rest, ">")
	if hasBrackets {
		rest = strings.TrimSpace(rest[1 : len(rest)-1])
	}
	if s == Strict {
		// RFC 821: "MAIL FROM:<reverse-path>" — colon immediately after the
		// keyword, no intervening space, path in angle brackets.
		if !hasColon || !hasBrackets || hadSpace {
			return "", false
		}
	}
	if rest == "" || !strings.Contains(rest, "@") {
		// Null reverse-path "<>" is legal for MAIL in strict mode.
		if keyword == "FROM" && hasBrackets && rest == "" {
			return "", true
		}
		return "", false
	}
	return rest, true
}
