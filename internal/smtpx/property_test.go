package smtpx

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: the engine never panics and never emits a non-SMTP line, no
// matter what byte salad a specimen feeds it — sinks face hostile input by
// definition.
func TestPropertyEngineRobustAgainstJunk(t *testing.T) {
	f := func(chunks [][]byte, strict bool) bool {
		mode := Lenient
		if strict {
			mode = Strict
		}
		ok := true
		eng := NewEngine(mode, func(line string) {
			if replyCode(line) == 0 {
				ok = false // every reply must carry a numeric code
			}
		}, nil)
		eng.Greet("220 sink")
		for _, c := range chunks {
			eng.Feed(c)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: DATA is unreachable without a prior accepted RCPT, for any
// command ordering — the invariant that makes harvested envelopes
// attributable.
func TestPropertyNoDataWithoutRcpt(t *testing.T) {
	verbs := []string{
		"HELO x", "EHLO y", "MAIL FROM:<a@b.c>", "RCPT TO:<v@x.y>",
		"DATA", "RSET", "NOOP", "QUIT", "XYZZY",
	}
	f := func(seq []uint8) bool {
		var envs int
		eng := NewEngine(Lenient, func(string) {}, nil)
		eng.OnMessage = func(env *Envelope) *Reply {
			envs++
			// Every completed envelope must carry at least one recipient.
			return nil
		}
		eng.Greet("220 sink")
		sawRcptAccepted := false
		for _, i := range seq {
			verb := verbs[int(i)%len(verbs)]
			eng.Feed([]byte(verb + "\r\n"))
			if strings.HasPrefix(verb, "RCPT") {
				sawRcptAccepted = true
			}
			if eng.state == stData {
				// Feed a body and terminate so the walk continues.
				eng.Feed([]byte("body\r\n.\r\n"))
			}
		}
		if envs > 0 && !sawRcptAccepted {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every completed envelope has a non-empty recipient list.
func TestPropertyEnvelopesHaveRecipients(t *testing.T) {
	f := func(nMsgs uint8, rcpts uint8) bool {
		n := int(nMsgs)%3 + 1
		r := int(rcpts)%3 + 1
		var bad bool
		eng := NewEngine(Lenient, func(string) {}, nil)
		eng.OnMessage = func(env *Envelope) *Reply {
			if len(env.Rcpts) != r || env.From == "" {
				bad = true
			}
			return nil
		}
		eng.Greet("220 x")
		eng.Feed([]byte("HELO h\r\n"))
		for i := 0; i < n; i++ {
			eng.Feed([]byte("MAIL FROM:<a@b.c>\r\n"))
			for j := 0; j < r; j++ {
				eng.Feed([]byte("RCPT TO:<v@x.y>\r\n"))
			}
			eng.Feed([]byte("DATA\r\nm\r\n.\r\n"))
		}
		return !bad && eng.Envelopes == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
