package smtpx

import (
	"gq/internal/host"
)

// Server binds a plain SMTP server to a host port: every connection is
// greeted immediately with a fixed banner. GQ's fidelity-adjustable sink
// (internal/sink) builds richer behaviour on the same Engine.
type Server struct {
	Banner     string
	Strictness Strictness
	// OnMessage receives completed envelopes (may be nil).
	OnMessage func(env *Envelope) *Reply

	// Sessions counts accepted connections; Envelopes completed messages.
	Sessions  uint64
	Envelopes uint64
}

// Serve starts the server on h at port.
func (s *Server) Serve(h *host.Host, port uint16) error {
	return h.Listen(port, func(c *host.Conn) {
		s.Sessions++
		e := NewEngine(s.Strictness,
			func(line string) { c.Write([]byte(line + "\r\n")) },
			func() { c.Close() })
		e.OnMessage = func(env *Envelope) *Reply {
			s.Envelopes++
			if s.OnMessage != nil {
				return s.OnMessage(env)
			}
			return nil
		}
		c.OnData = func(data []byte) { e.Feed(data) }
		c.OnPeerClose = func() { c.Close() }
		e.Greet(s.Banner)
	})
}
