// Package netstack implements the wire formats GQ's machinery parses and
// rewrites: Ethernet with 802.1Q VLAN tags, ARP, IPv4, TCP, and UDP. Layers
// follow the gopacket convention of paired Marshal/Unmarshal with explicit
// byte layouts, so the gateway operates on the same representations a
// hardware deployment would see.
package netstack

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

// Addr is an IPv4 address in host byte order, chosen over a byte array so
// address pools and subnet arithmetic stay simple.
type Addr uint32

// AddrFrom4 assembles an Addr from dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromSlice decodes a 4-byte big-endian slice.
func AddrFromSlice(b []byte) Addr {
	return Addr(binary.BigEndian.Uint32(b))
}

// ParseAddr parses dotted-quad notation. It returns an error for anything
// that is not exactly four in-range octets.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netstack: invalid IPv4 address %q", s)
	}
	var a Addr
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netstack: invalid IPv4 address %q", s)
		}
		a = a<<8 | Addr(n)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constant initialisation; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Put writes the address in network byte order into b.
func (a Addr) Put(b []byte) { binary.BigEndian.PutUint32(b, uint32(a)) }

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// IsBroadcast reports whether the address is 255.255.255.255.
func (a Addr) IsBroadcast() bool { return a == 0xffffffff }

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Base Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/n" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netstack: invalid prefix %q", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netstack: invalid prefix length in %q", s)
	}
	return Prefix{Base: a.Mask(bits), Bits: bits}, nil
}

// MustParsePrefix is ParsePrefix for constant initialisation.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask clears the host bits of a for a prefix of the given length.
func (a Addr) Mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return a
	}
	return a &^ (1<<(32-uint(bits)) - 1)
}

// Contains reports whether addr falls within the prefix.
func (p Prefix) Contains(addr Addr) bool { return addr.Mask(p.Bits) == p.Base }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() int {
	return 1 << (32 - uint(p.Bits))
}

// Nth returns the i'th address in the prefix (0 = network base).
func (p Prefix) Nth(i int) Addr { return p.Base + Addr(i) }

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Base, p.Bits) }

// Protocol numbers used by the simulated stack.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// ProtoName names a protocol number for reports and logs.
func ProtoName(p uint8) string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return strconv.Itoa(int(p))
	}
}

// FlowKey identifies a transport flow within an inmate network. The VLAN ID
// is part of the key because GQ isolates each inmate on its own VLAN and the
// RFC 1918 internal ranges may repeat across subfarms.
type FlowKey struct {
	VLAN             uint16
	SrcIP, DstIP     Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse swaps the flow's endpoints.
func (k FlowKey) Reverse() FlowKey {
	k.SrcIP, k.DstIP = k.DstIP, k.SrcIP
	k.SrcPort, k.DstPort = k.DstPort, k.SrcPort
	return k
}

// String renders "vlan src:sport -> dst:dport/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("vlan%d %s:%d -> %s:%d/%s",
		k.VLAN, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, ProtoName(k.Proto))
}
