package netstack

import (
	"encoding/binary"
	"fmt"
)

// EtherType values understood by the farm.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100 // 802.1Q TPID
)

// NoVLAN marks an untagged frame. Valid 802.1Q VLAN IDs are 1-4094.
const NoVLAN uint16 = 0

// MaxVLAN is the largest assignable 802.1Q VLAN ID (4095 is reserved).
const MaxVLAN uint16 = 4094

// Ethernet is an Ethernet II header with an optional single 802.1Q tag.
// GQ enforces inmate isolation at the link layer: each inmate sends and
// receives traffic on a unique VLAN ID, so the tag is first-class here.
type Ethernet struct {
	Dst, Src  MAC
	VLAN      uint16 // NoVLAN when untagged; otherwise the 12-bit VLAN ID
	Priority  uint8  // 802.1p PCP bits, usually zero
	EtherType uint16
}

const (
	ethHeaderLen     = 14
	ethTaggedHdrLen  = 18
	vlanIDMask       = 0x0fff
	vlanPriorityMask = 0xe000
)

// HeaderLen reports the encoded header size, which depends on tagging.
func (e *Ethernet) HeaderLen() int {
	if e.VLAN != NoVLAN {
		return ethTaggedHdrLen
	}
	return ethHeaderLen
}

// Marshal appends the encoded header to dst and returns the result.
func (e *Ethernet) Marshal(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	if e.VLAN != NoVLAN {
		tci := uint16(e.Priority)<<13 | e.VLAN&vlanIDMask
		dst = binary.BigEndian.AppendUint16(dst, EtherTypeVLAN)
		dst = binary.BigEndian.AppendUint16(dst, tci)
	}
	return binary.BigEndian.AppendUint16(dst, e.EtherType)
}

// Unmarshal decodes the header from b and returns the payload.
func (e *Ethernet) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < ethHeaderLen {
		return nil, fmt.Errorf("netstack: ethernet frame too short (%d bytes)", len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	if et == EtherTypeVLAN {
		if len(b) < ethTaggedHdrLen {
			return nil, fmt.Errorf("netstack: truncated 802.1Q tag")
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		e.VLAN = tci & vlanIDMask
		e.Priority = uint8(tci >> 13)
		e.EtherType = binary.BigEndian.Uint16(b[16:18])
		return b[ethTaggedHdrLen:], nil
	}
	e.VLAN = NoVLAN
	e.Priority = 0
	e.EtherType = et
	return b[ethHeaderLen:], nil
}

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an IPv4-over-Ethernet ARP packet (RFC 826).
type ARP struct {
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP Addr
}

const arpLen = 28

// Marshal appends the 28-byte encoding to dst.
func (a *ARP) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1)             // htype: Ethernet
	dst = binary.BigEndian.AppendUint16(dst, EtherTypeIPv4) // ptype
	dst = append(dst, 6, 4)                                 // hlen, plen
	dst = binary.BigEndian.AppendUint16(dst, a.Op)
	dst = append(dst, a.SenderHW[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.SenderIP))
	dst = append(dst, a.TargetHW[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.TargetIP))
	return dst
}

// Unmarshal decodes an ARP packet.
func (a *ARP) Unmarshal(b []byte) error {
	if len(b) < arpLen {
		return fmt.Errorf("netstack: ARP packet too short (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != EtherTypeIPv4 {
		return fmt.Errorf("netstack: unsupported ARP hardware/protocol type")
	}
	if b[4] != 6 || b[5] != 4 {
		return fmt.Errorf("netstack: unsupported ARP address lengths")
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = AddrFromSlice(b[14:18])
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = AddrFromSlice(b[24:28])
	return nil
}
