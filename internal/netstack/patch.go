package netstack

import "encoding/binary"

// In-place frame mutators: the gateway's fast path patches raw wire bytes
// (VLAN retag, MAC rewrite, address NAT, sequence bumps) instead of
// parse/clone/marshal round-trips. Checksums are maintained incrementally
// per RFC 1624 (HC' = ~(~HC + ~m + m')), so a patch costs a handful of
// adds regardless of payload size.

// csumDelta16 returns the one's-complement delta for replacing old with new
// in checksummed data. Accumulate deltas from several fields and apply the
// total once with csumApply.
func csumDelta16(old, new uint16) uint32 {
	return uint32(^old) + uint32(new)
}

// csumDelta32 is csumDelta16 over a 32-bit field (two checksum words).
func csumDelta32(old, new uint32) uint32 {
	return csumDelta16(uint16(old>>16), uint16(new>>16)) +
		csumDelta16(uint16(old), uint16(new))
}

// csumApply folds an accumulated delta into the checksum stored at
// field[0:2] (RFC 1624 eqn. 3).
func csumApply(field []byte, delta uint32) {
	if delta == 0 {
		return
	}
	s := uint32(^binary.BigEndian.Uint16(field)) & 0xffff
	s += delta
	for s>>16 != 0 {
		s = s&0xffff + s>>16
	}
	binary.BigEndian.PutUint16(field, ^uint16(s))
}

// RetagVLAN rewrites the 802.1Q VLAN ID of a tagged frame in place,
// preserving the PCP/DEI bits. It returns false (frame untouched) when the
// frame is untagged, truncated, or vlan is not a valid ID: retagging an
// untagged frame changes the frame length and needs the slow path.
func RetagVLAN(frame []byte, vlan uint16) bool {
	if len(frame) < ethTaggedHdrLen || vlan == NoVLAN || vlan > MaxVLAN ||
		binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		return false
	}
	tci := binary.BigEndian.Uint16(frame[14:16])
	binary.BigEndian.PutUint16(frame[14:16], tci&^vlanIDMask|vlan)
	return true
}

// SetEthDst rewrites the destination MAC in place.
func SetEthDst(frame []byte, mac MAC) bool {
	if len(frame) < ethHeaderLen {
		return false
	}
	copy(frame[0:6], mac[:])
	return true
}

// SetEthSrc rewrites the source MAC in place.
func SetEthSrc(frame []byte, mac MAC) bool {
	if len(frame) < ethHeaderLen {
		return false
	}
	copy(frame[6:12], mac[:])
	return true
}

// ipLayout locates the IPv4 header of a frame. ok is false for non-IPv4 or
// truncated frames.
func ipLayout(frame []byte) (l3, ihl int, ok bool) {
	if len(frame) < ethHeaderLen {
		return 0, 0, false
	}
	l3 = ethHeaderLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == EtherTypeVLAN {
		if len(frame) < ethTaggedHdrLen {
			return 0, 0, false
		}
		l3 = ethTaggedHdrLen
		et = binary.BigEndian.Uint16(frame[16:18])
	}
	if et != EtherTypeIPv4 || len(frame) < l3+IPv4HeaderLen {
		return 0, 0, false
	}
	ihl = int(frame[l3]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(frame) < l3+ihl {
		return 0, 0, false
	}
	return l3, ihl, true
}

// patchIPAddr rewrites the IPv4 address at hdrOff (12 for src, 16 for dst),
// fixing the IP header checksum and the TCP/UDP checksum (pseudo-header)
// incrementally.
func patchIPAddr(frame []byte, hdrOff int, a Addr) bool {
	l3, ihl, ok := ipLayout(frame)
	if !ok {
		return false
	}
	hdr := frame[l3:]
	old := AddrFromSlice(hdr[hdrOff : hdrOff+4])
	if old == a {
		return true
	}
	delta := csumDelta32(uint32(old), uint32(a))
	binary.BigEndian.PutUint32(hdr[hdrOff:], uint32(a))
	csumApply(hdr[10:12], delta)
	// Transport checksums cover the pseudo-header.
	seg := frame[l3+ihl:]
	switch hdr[9] {
	case ProtoTCP:
		if len(seg) >= TCPHeaderLen {
			csumApply(seg[16:18], delta)
		}
	case ProtoUDP:
		if len(seg) >= UDPHeaderLen && binary.BigEndian.Uint16(seg[6:8]) != 0 {
			csumApply(seg[6:8], delta)
			if binary.BigEndian.Uint16(seg[6:8]) == 0 {
				binary.BigEndian.PutUint16(seg[6:8], 0xffff)
			}
		}
	}
	return true
}

// PatchIPSrc rewrites the IPv4 source address in place with checksum fixup.
func PatchIPSrc(frame []byte, a Addr) bool { return patchIPAddr(frame, 12, a) }

// PatchIPDst rewrites the IPv4 destination address in place with checksum
// fixup.
func PatchIPDst(frame []byte, a Addr) bool { return patchIPAddr(frame, 16, a) }

// tcpSeg locates the TCP header of a frame (nil if not TCP).
func tcpSeg(frame []byte) []byte {
	l3, ihl, ok := ipLayout(frame)
	if !ok || frame[l3+9] != ProtoTCP || len(frame) < l3+ihl+TCPHeaderLen {
		return nil
	}
	return frame[l3+ihl:]
}

// BumpTCPSeq adds delta to the TCP sequence number in place with checksum
// fixup — the shim sequence-space adjustment (Fig. 5) without re-marshal.
func BumpTCPSeq(frame []byte, delta uint32) bool {
	seg := tcpSeg(frame)
	if seg == nil {
		return false
	}
	old := binary.BigEndian.Uint32(seg[4:8])
	binary.BigEndian.PutUint32(seg[4:8], old+delta)
	csumApply(seg[16:18], csumDelta32(old, old+delta))
	return true
}

// BumpTCPAck adds delta to the TCP acknowledgement number in place with
// checksum fixup.
func BumpTCPAck(frame []byte, delta uint32) bool {
	seg := tcpSeg(frame)
	if seg == nil {
		return false
	}
	old := binary.BigEndian.Uint32(seg[8:12])
	binary.BigEndian.PutUint32(seg[8:12], old+delta)
	csumApply(seg[16:18], csumDelta32(old, old+delta))
	return true
}
