package netstack

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"10.0.0.23", AddrFrom4(10, 0, 0, 23), true},
		{"192.150.187.12", AddrFrom4(192, 150, 187, 12), true},
		{"255.255.255.255", 0xffffffff, true},
		{"0.0.0.0", 0, true},
		{"256.1.1.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"01.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefix(t *testing.T) {
	p := MustParsePrefix("10.3.0.0/16")
	if !p.Contains(MustParseAddr("10.3.9.241")) {
		t.Error("prefix should contain 10.3.9.241")
	}
	if p.Contains(MustParseAddr("10.4.0.1")) {
		t.Error("prefix should not contain 10.4.0.1")
	}
	if p.Size() != 1<<16 {
		t.Errorf("Size = %d", p.Size())
	}
	if got := p.Nth(5); got != MustParseAddr("10.3.0.5") {
		t.Errorf("Nth(5) = %v", got)
	}
	p24 := MustParsePrefix("192.150.187.0/24")
	if p24.String() != "192.150.187.0/24" {
		t.Errorf("String = %q", p24.String())
	}
	if _, err := ParsePrefix("10.0.0.0/33"); err == nil {
		t.Error("prefix length 33 accepted")
	}
	if _, err := ParsePrefix("10.0.0.0"); err == nil {
		t.Error("missing slash accepted")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		Src:       MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		EtherType: EtherTypeIPv4,
	}
	payload := []byte("hello farm")
	frame := append(e.Marshal(nil), payload...)
	if len(frame) != ethHeaderLen+len(payload) {
		t.Fatalf("untagged frame length %d", len(frame))
	}
	var d Ethernet
	rest, err := d.Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if d != e || !bytes.Equal(rest, payload) {
		t.Fatalf("decoded %+v payload %q", d, rest)
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       BroadcastMAC,
		Src:       MAC{2, 0, 0, 0, 0, 7},
		VLAN:      18, // a Grum inmate's VLAN in Fig. 6
		Priority:  3,
		EtherType: EtherTypeARP,
	}
	frame := e.Marshal(nil)
	if len(frame) != ethTaggedHdrLen {
		t.Fatalf("tagged header length %d", len(frame))
	}
	// TPID must be 0x8100 on the wire.
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		t.Fatal("missing 802.1Q TPID")
	}
	var d Ethernet
	if _, err := d.Unmarshal(frame); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("decoded %+v want %+v", d, e)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	if _, err := d.Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short frame accepted")
	}
	// Tagged frame cut off after TPID.
	e := Ethernet{VLAN: 7, EtherType: EtherTypeIPv4}
	frame := e.Marshal(nil)
	if _, err := d.Unmarshal(frame[:15]); err == nil {
		t.Error("truncated 802.1Q tag accepted")
	}
}

func TestVLANIDMasking(t *testing.T) {
	e := Ethernet{VLAN: 0x1fff, EtherType: EtherTypeIPv4} // 13 bits set
	frame := e.Marshal(nil)
	var d Ethernet
	if _, err := d.Unmarshal(frame); err != nil {
		t.Fatal(err)
	}
	if d.VLAN != 0x0fff {
		t.Fatalf("VLAN ID not masked to 12 bits: %#x", d.VLAN)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       ARPRequest,
		SenderHW: MAC{2, 0, 0, 0, 0, 1},
		SenderIP: MustParseAddr("10.0.0.23"),
		TargetIP: MustParseAddr("10.0.0.1"),
	}
	b := a.Marshal(nil)
	if len(b) != arpLen {
		t.Fatalf("ARP length %d, want %d", len(b), arpLen)
	}
	var d ARP
	if err := d.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Fatalf("decoded %+v want %+v", d, a)
	}
	if err := d.Unmarshal(b[:20]); err == nil {
		t.Error("short ARP accepted")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0,
		ID:       0x1234,
		Flags:    2, // DF
		TTL:      DefaultTTL,
		Protocol: ProtoTCP,
		Src:      MustParseAddr("10.0.0.23"),
		Dst:      MustParseAddr("192.150.187.12"),
	}
	payload := []byte("GET bot.exe HTTP/1.1")
	pkt := ip.Marshal(nil, payload)
	var d IPv4
	rest, err := d.Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ProtoTCP || d.Flags != 2 || d.ID != 0x1234 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload %q", rest)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2}
	pkt := ip.Marshal(nil, nil)
	pkt[16] ^= 0x40 // flip a bit in dst addr
	var d IPv4
	if _, err := d.Unmarshal(pkt); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestIPv4Truncated(t *testing.T) {
	var d IPv4
	if _, err := d.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	b := make([]byte, 20)
	b[0] = 0x60 // IPv6 version nibble
	if _, err := d.Unmarshal(b); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := MustParseAddr("10.0.0.23"), MustParseAddr("192.150.187.12")
	tc := TCP{
		SrcPort: 1234, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags:  FlagPSH | FlagACK,
		Window: 65535,
	}
	payload := []byte("GET bot.exe HTTP/1.1\r\n\r\n")
	seg := tc.Marshal(nil, src, dst, payload)
	var d TCP
	rest, err := d.Unmarshal(seg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if d != tc {
		t.Fatalf("decoded %+v want %+v", d, tc)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload %q", rest)
	}
}

func TestTCPChecksumCoversPseudoHeader(t *testing.T) {
	src, dst := Addr(1), Addr(2)
	tc := TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	seg := tc.Marshal(nil, src, dst, nil)
	var d TCP
	// Same bytes, different claimed endpoints: checksum must fail.
	if _, err := d.Unmarshal(seg, src, dst+1); err == nil {
		t.Error("segment accepted under wrong pseudo-header")
	}
	if _, err := d.Unmarshal(seg, src, dst); err != nil {
		t.Errorf("valid segment rejected: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := MustParseAddr("10.3.1.4"), MustParseAddr("10.0.0.23")
	u := UDP{SrcPort: 53, DstPort: 4096}
	payload := []byte{0xde, 0xad}
	seg := u.Marshal(nil, src, dst, payload)
	var d UDP
	rest, err := d.Unmarshal(seg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 53 || d.DstPort != 4096 || int(d.Length) != UDPHeaderLen+2 {
		t.Fatalf("decoded %+v", d)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload % x", rest)
	}
	seg[9] ^= 1 // corrupt payload
	if _, err := d.Unmarshal(seg, src, dst); err == nil {
		t.Error("corrupted UDP accepted")
	}
}

func TestChecksumZero(t *testing.T) {
	// RFC 1071: checksum of data including its own valid checksum is 0.
	data := []byte{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34}
	sum := Checksum(data, 0)
	full := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
	if Checksum(full, 0) != 0 {
		t.Error("self-checksum not zero")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}, 0) != ^uint16(0xff00) {
		t.Error("odd-length checksum wrong")
	}
}

func TestPacketRoundTripTCP(t *testing.T) {
	p := &Packet{
		Eth: Ethernet{
			Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2},
			VLAN: 12, EtherType: EtherTypeIPv4,
		},
		IP: &IPv4{TTL: 64, Protocol: ProtoTCP,
			Src: MustParseAddr("10.0.0.23"), Dst: MustParseAddr("192.150.187.12")},
		TCP:     &TCP{SrcPort: 1234, DstPort: 80, Seq: 100, Flags: FlagSYN, Window: 8192},
		Payload: nil,
	}
	q, err := ParseFrame(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth.VLAN != 12 || q.TCP == nil || q.TCP.SrcPort != 1234 || q.TCP.Flags != FlagSYN {
		t.Fatalf("round trip %+v", q)
	}
	k, ok := q.FlowKey()
	if !ok {
		t.Fatal("no flow key")
	}
	want := FlowKey{VLAN: 12, SrcIP: p.IP.Src, DstIP: p.IP.Dst, SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	if k != want {
		t.Fatalf("flow key %+v want %+v", k, want)
	}
	if k.Reverse().Reverse() != k {
		t.Error("Reverse not involutive")
	}
}

func TestPacketRoundTripARP(t *testing.T) {
	p := &Packet{
		Eth: Ethernet{Dst: BroadcastMAC, Src: MAC{2, 0, 0, 0, 0, 9}, VLAN: 7, EtherType: EtherTypeARP},
		ARP: &ARP{Op: ARPRequest, SenderHW: MAC{2, 0, 0, 0, 0, 9}, SenderIP: 10, TargetIP: 11},
	}
	q, err := ParseFrame(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.ARP == nil || *q.ARP != *p.ARP {
		t.Fatalf("ARP round trip %+v", q.ARP)
	}
	if _, ok := q.FlowKey(); ok {
		t.Error("ARP packet has a flow key")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{
		Eth:     Ethernet{EtherType: EtherTypeIPv4},
		IP:      &IPv4{Src: 1, Dst: 2, TTL: 64, Protocol: ProtoTCP},
		TCP:     &TCP{SrcPort: 5, DstPort: 6, Seq: 9},
		Payload: []byte("abc"),
	}
	q := p.Clone()
	q.IP.Src = 99
	q.TCP.Seq = 1000
	q.Payload[0] = 'x'
	if p.IP.Src != 1 || p.TCP.Seq != 9 || p.Payload[0] != 'a' {
		t.Error("Clone aliases original")
	}
}

// Property: TCP Marshal/Unmarshal round-trips arbitrary headers and
// payloads under arbitrary pseudo-header endpoints.
func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, src, dst uint32, payload []byte) bool {
		tc := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		seg := tc.Marshal(nil, Addr(src), Addr(dst), payload)
		var d TCP
		rest, err := d.Unmarshal(seg, Addr(src), Addr(dst))
		return err == nil && d == tc && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: frame parsing never panics on arbitrary junk.
func TestPropertyParseFrameNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on % x: %v", b, r)
			}
		}()
		_, _ = ParseFrame(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a packet built from random transport fields survives a full
// frame round trip.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(vlan uint16, src, dst uint32, sp, dp uint16, payload []byte) bool {
		vlan %= MaxVLAN // may be 0 = untagged
		p := &Packet{
			Eth: Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2},
				VLAN: vlan, EtherType: EtherTypeIPv4},
			IP:      &IPv4{TTL: 64, Protocol: ProtoUDP, Src: Addr(src), Dst: Addr(dst)},
			UDP:     &UDP{SrcPort: sp, DstPort: dp},
			Payload: payload,
		}
		q, err := ParseFrame(p.Marshal())
		if err != nil {
			return false
		}
		return q.Eth.VLAN == vlan && q.IP.Src == Addr(src) && q.UDP.SrcPort == sp &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(FlagSYN | FlagACK); got != "SYN|ACK" {
		t.Errorf("FlagString = %q", got)
	}
	if got := FlagString(0); got != "none" {
		t.Errorf("FlagString(0) = %q", got)
	}
}

func TestProtoName(t *testing.T) {
	if ProtoName(ProtoTCP) != "tcp" || ProtoName(ProtoUDP) != "udp" || ProtoName(99) != "99" {
		t.Error("ProtoName wrong")
	}
}
