package netstack

import (
	"encoding/binary"
	"fmt"
)

// IPv4 is an IPv4 header without options (IHL always 5). GQ's gateway
// rewrites source and destination addresses in flight (NAT, redirection),
// so checksums are recomputed on Marshal rather than patched incrementally.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst Addr
	// Length is the total datagram length. It is filled in by Marshal from
	// the payload size and exposed for inspection after Unmarshal.
	Length uint16
}

// IPv4HeaderLen is the fixed header size used by the simulated stack.
const IPv4HeaderLen = 20

// DefaultTTL is the TTL hosts use for originated datagrams.
const DefaultTTL = 64

// Marshal appends the header followed by payload to dst, computing length
// and checksum.
func (ip *IPv4) Marshal(dst []byte, payload []byte) []byte {
	total := IPv4HeaderLen + len(payload)
	ip.Length = uint16(total)
	start := len(dst)
	dst = append(dst, 0x45, ip.TOS)
	dst = binary.BigEndian.AppendUint16(dst, ip.Length)
	dst = binary.BigEndian.AppendUint16(dst, ip.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	dst = append(dst, ip.TTL, ip.Protocol)
	dst = binary.BigEndian.AppendUint16(dst, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint32(dst, uint32(ip.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(ip.Dst))
	sum := Checksum(dst[start:], 0)
	binary.BigEndian.PutUint16(dst[start+10:], sum)
	return append(dst, payload...)
}

// Unmarshal decodes the header from b, verifies the checksum, and returns
// the payload (trimmed to the header's declared length).
func (ip *IPv4) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("netstack: IPv4 header too short (%d bytes)", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("netstack: IP version %d, want 4", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("netstack: bad IHL %d", ihl)
	}
	if Checksum(b[:ihl], 0) != 0 {
		return nil, fmt.Errorf("netstack: IPv4 header checksum mismatch")
	}
	ip.TOS = b[1]
	ip.Length = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Src = AddrFromSlice(b[12:16])
	ip.Dst = AddrFromSlice(b[16:20])
	if int(ip.Length) < ihl || int(ip.Length) > len(b) {
		return nil, fmt.Errorf("netstack: IPv4 length %d inconsistent with frame %d", ip.Length, len(b))
	}
	return b[ihl:ip.Length], nil
}

// Checksum computes the Internet checksum (RFC 1071) over b seeded with an
// initial partial sum. The result is the ones-complement value ready to be
// stored; a checksum over data that already includes a valid checksum field
// yields zero.
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src)>>16 + uint32(src)&0xffff
	sum += uint32(dst)>>16 + uint32(dst)&0xffff
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
