package netstack

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// FlagString renders flags as e.g. "SYN|ACK" for logs and traces.
func FlagString(f uint8) string {
	var parts []string
	for _, fl := range []struct {
		bit  uint8
		name string
	}{{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"}} {
		if f&fl.bit != 0 {
			parts = append(parts, fl.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// TCP is a TCP header without options (data offset always 5). The farm's
// simulated hosts negotiate a fixed MSS, so options are unnecessary, and a
// fixed-size header keeps the gateway's in-flight sequence arithmetic
// (shim injection and stripping, Fig. 5) straightforward to audit.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Urgent           uint16
}

// TCPHeaderLen is the fixed header size used by the simulated stack.
const TCPHeaderLen = 20

// Marshal appends the header followed by payload to dst, computing the
// checksum over the pseudo-header for the given IP endpoints.
func (t *TCP) Marshal(dst []byte, src, dstIP Addr, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, t.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, t.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, t.Seq)
	dst = binary.BigEndian.AppendUint32(dst, t.Ack)
	dst = append(dst, 5<<4, t.Flags)
	dst = binary.BigEndian.AppendUint16(dst, t.Window)
	dst = binary.BigEndian.AppendUint16(dst, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint16(dst, t.Urgent)
	dst = append(dst, payload...)
	seg := dst[start:]
	sum := Checksum(seg, pseudoHeaderSum(src, dstIP, ProtoTCP, len(seg)))
	binary.BigEndian.PutUint16(seg[16:], sum)
	return dst
}

// Unmarshal decodes the header, verifies the checksum against the given IP
// endpoints, and returns the payload.
func (t *TCP) Unmarshal(b []byte, src, dst Addr) ([]byte, error) {
	if len(b) < TCPHeaderLen {
		return nil, fmt.Errorf("netstack: TCP segment too short (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return nil, fmt.Errorf("netstack: bad TCP data offset %d", off)
	}
	if Checksum(b, pseudoHeaderSum(src, dst, ProtoTCP, len(b))) != 0 {
		return nil, fmt.Errorf("netstack: TCP checksum mismatch")
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	return b[off:], nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// Marshal appends the header followed by payload to dst with checksum.
func (u *UDP) Marshal(dst []byte, src, dstIP Addr, payload []byte) []byte {
	u.Length = uint16(UDPHeaderLen + len(payload))
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, u.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, u.Length)
	dst = binary.BigEndian.AppendUint16(dst, 0)
	dst = append(dst, payload...)
	seg := dst[start:]
	sum := Checksum(seg, pseudoHeaderSum(src, dstIP, ProtoUDP, len(seg)))
	if sum == 0 {
		sum = 0xffff // RFC 768: zero checksum means "not computed"
	}
	binary.BigEndian.PutUint16(seg[6:], sum)
	return dst
}

// Unmarshal decodes the header, verifies checksum and length, and returns
// the payload.
func (u *UDP) Unmarshal(b []byte, src, dst Addr) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, fmt.Errorf("netstack: UDP datagram too short (%d bytes)", len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return nil, fmt.Errorf("netstack: UDP length %d inconsistent with segment %d", u.Length, len(b))
	}
	seg := b[:u.Length]
	if binary.BigEndian.Uint16(b[6:8]) != 0 {
		if Checksum(seg, pseudoHeaderSum(src, dst, ProtoUDP, len(seg))) != 0 {
			return nil, fmt.Errorf("netstack: UDP checksum mismatch")
		}
	}
	return seg[UDPHeaderLen:], nil
}
