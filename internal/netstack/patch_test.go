package netstack

import (
	"bytes"
	"testing"
	"testing/quick"
)

// testTCPFrame builds a tagged TCP frame and returns the parsed packet and
// its wire bytes.
func testTCPFrame(t *testing.T, payload []byte) (*Packet, []byte) {
	t.Helper()
	p := &Packet{
		Eth: Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2},
			VLAN: 12, EtherType: EtherTypeIPv4},
		IP: &IPv4{TTL: 64, Protocol: ProtoTCP,
			Src: MustParseAddr("10.3.0.5"), Dst: MustParseAddr("192.150.187.12")},
		TCP: &TCP{SrcPort: 1234, DstPort: 80, Seq: 1000, Ack: 2000,
			Flags: FlagACK | FlagPSH, Window: 8192},
		Payload: payload,
	}
	frame := p.Marshal()
	q, err := ParseFrame(append([]byte(nil), frame...))
	if err != nil {
		t.Fatal(err)
	}
	return q, frame
}

// reparse asserts the frame still decodes with valid checksums.
func reparse(t *testing.T, frame []byte) *Packet {
	t.Helper()
	q, err := ParseFrame(append([]byte(nil), frame...))
	if err != nil {
		t.Fatalf("patched frame no longer parses: %v", err)
	}
	return q
}

func TestRetagVLAN(t *testing.T) {
	_, frame := testTCPFrame(t, []byte("hello"))
	if !RetagVLAN(frame, 42) {
		t.Fatal("RetagVLAN refused a tagged frame")
	}
	q := reparse(t, frame)
	if q.Eth.VLAN != 42 {
		t.Fatalf("VLAN = %d, want 42", q.Eth.VLAN)
	}
	// Untagged frames need the slow path.
	unt := (&Packet{
		Eth:     Ethernet{EtherType: EtherTypeIPv4},
		IP:      &IPv4{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2},
		UDP:     &UDP{SrcPort: 1, DstPort: 2},
		Payload: nil,
	}).Marshal()
	if RetagVLAN(unt, 42) {
		t.Fatal("RetagVLAN accepted an untagged frame")
	}
	if RetagVLAN(frame, NoVLAN) || RetagVLAN(frame, MaxVLAN+1) {
		t.Fatal("RetagVLAN accepted an invalid VLAN ID")
	}
}

func TestRetagVLANPreservesPriority(t *testing.T) {
	p := &Packet{
		Eth: Ethernet{VLAN: 5, Priority: 3, EtherType: EtherTypeIPv4},
		IP:  &IPv4{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2},
		UDP: &UDP{SrcPort: 1, DstPort: 2},
	}
	frame := p.Marshal()
	RetagVLAN(frame, 9)
	q := reparse(t, frame)
	if q.Eth.VLAN != 9 || q.Eth.Priority != 3 {
		t.Fatalf("vlan=%d priority=%d, want 9/3", q.Eth.VLAN, q.Eth.Priority)
	}
}

func TestSetEthAddrs(t *testing.T) {
	_, frame := testTCPFrame(t, nil)
	d, s := MAC{2, 9, 9, 9, 9, 1}, MAC{2, 9, 9, 9, 9, 2}
	if !SetEthDst(frame, d) || !SetEthSrc(frame, s) {
		t.Fatal("MAC rewrite refused")
	}
	q := reparse(t, frame)
	if q.Eth.Dst != d || q.Eth.Src != s {
		t.Fatalf("MACs = %v/%v", q.Eth.Dst, q.Eth.Src)
	}
}

func TestPatchIPAddrsTCP(t *testing.T) {
	_, frame := testTCPFrame(t, []byte("payload bytes"))
	src, dst := MustParseAddr("172.16.0.9"), MustParseAddr("10.1.2.3")
	if !PatchIPSrc(frame, src) || !PatchIPDst(frame, dst) {
		t.Fatal("patch refused")
	}
	q := reparse(t, frame) // verifies IP header and TCP pseudo-header checksums
	if q.IP.Src != src || q.IP.Dst != dst {
		t.Fatalf("addrs = %v > %v", q.IP.Src, q.IP.Dst)
	}
	if string(q.Payload) != "payload bytes" {
		t.Fatalf("payload corrupted: %q", q.Payload)
	}
}

func TestPatchIPAddrsUDP(t *testing.T) {
	p := &Packet{
		Eth:     Ethernet{VLAN: 7, EtherType: EtherTypeIPv4},
		IP:      &IPv4{TTL: 64, Protocol: ProtoUDP, Src: 3, Dst: 4},
		UDP:     &UDP{SrcPort: 53, DstPort: 999},
		Payload: []byte("dns-ish"),
	}
	frame := p.Marshal()
	if !PatchIPDst(frame, MustParseAddr("10.0.0.23")) {
		t.Fatal("patch refused")
	}
	q := reparse(t, frame) // UDP checksum verified on parse
	if q.IP.Dst != MustParseAddr("10.0.0.23") {
		t.Fatalf("dst = %v", q.IP.Dst)
	}
}

func TestBumpTCPSeqAck(t *testing.T) {
	q, frame := testTCPFrame(t, []byte("x"))
	if !BumpTCPSeq(frame, 7) || !BumpTCPAck(frame, ^uint32(0)) { // +7, -1
		t.Fatal("bump refused")
	}
	r := reparse(t, frame)
	if r.TCP.Seq != q.TCP.Seq+7 || r.TCP.Ack != q.TCP.Ack-1 {
		t.Fatalf("seq/ack = %d/%d, want %d/%d", r.TCP.Seq, r.TCP.Ack, q.TCP.Seq+7, q.TCP.Ack-1)
	}
}

// Property: patching random addresses into random TCP/UDP frames always
// leaves checksums consistent (the frame re-parses).
func TestPropertyPatchChecksumConsistent(t *testing.T) {
	f := func(srcIn, dstIn, srcOut, dstOut uint32, udp bool, seqDelta uint32, payload []byte) bool {
		p := &Packet{
			Eth: Ethernet{VLAN: 30, EtherType: EtherTypeIPv4},
			IP:  &IPv4{TTL: 64, Src: Addr(srcIn), Dst: Addr(dstIn)},
		}
		if udp {
			p.IP.Protocol = ProtoUDP
			p.UDP = &UDP{SrcPort: 7, DstPort: 8}
		} else {
			p.IP.Protocol = ProtoTCP
			p.TCP = &TCP{SrcPort: 7, DstPort: 8, Seq: 1, Ack: 2, Flags: FlagACK}
		}
		p.Payload = payload
		frame := p.Marshal()
		PatchIPSrc(frame, Addr(srcOut))
		PatchIPDst(frame, Addr(dstOut))
		if !udp {
			BumpTCPSeq(frame, seqDelta)
			BumpTCPAck(frame, seqDelta)
		}
		_, err := ParseFrame(frame)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalFastPathAliasesWire(t *testing.T) {
	q, _ := testTCPFrame(t, []byte("hello"))
	out := q.Marshal()
	if len(out) == 0 || &out[0] != &q.wire[0] {
		t.Fatal("unmodified packet did not take the zero-copy fast path")
	}
}

func TestMarshalFastPathMatchesSlowPath(t *testing.T) {
	mutate := func(p *Packet) {
		p.Eth.Dst = MAC{2, 1, 1, 1, 1, 1}
		p.Eth.VLAN = 99
		p.IP.Src = MustParseAddr("10.9.9.9")
		p.IP.Dst = MustParseAddr("10.8.8.8")
		p.IP.TTL--
		p.TCP.SrcPort = 40000
		p.TCP.Seq += 12345
		p.TCP.Ack -= 777
		p.TCP.Flags |= FlagURG
		p.TCP.Window = 1
	}
	fast, _ := testTCPFrame(t, []byte("same payload"))
	slow, _ := testTCPFrame(t, []byte("same payload"))
	mutate(fast)
	mutate(slow)
	slow.wire = nil // force full re-serialisation
	f, s := fast.Marshal(), slow.Marshal()
	if !bytes.Equal(f, s) {
		t.Fatalf("fast path diverges from slow path:\nfast % x\nslow % x", f, s)
	}
	if _, err := ParseFrame(append([]byte(nil), f...)); err != nil {
		t.Fatalf("fast-path frame invalid: %v", err)
	}
}

func TestMarshalSlowPathOnShapeChange(t *testing.T) {
	// Dropping the VLAN tag changes frame length: must not alias the wire.
	q, _ := testTCPFrame(t, []byte("hi"))
	q.Eth.VLAN = NoVLAN
	out := q.Marshal()
	if len(out) == len(q.wire) {
		t.Fatal("untagging did not shrink the frame")
	}
	if r := reparse(t, out); r.Eth.VLAN != NoVLAN || string(r.Payload) != "hi" {
		t.Fatalf("reshaped frame wrong: %v", r)
	}

	// Replacing the payload must also fall back.
	q2, _ := testTCPFrame(t, []byte("aa"))
	q2.Payload = []byte("bbbb")
	out2 := q2.Marshal()
	if len(out2) != 0 && len(q2.wire) != 0 && &out2[0] == &q2.wire[0] {
		t.Fatal("payload swap still aliased the stale wire buffer")
	}
	if r := reparse(t, out2); string(r.Payload) != "bbbb" {
		t.Fatalf("payload = %q", r.Payload)
	}
}

func TestAppendWireNeverAliases(t *testing.T) {
	q, _ := testTCPFrame(t, []byte("scratch me"))
	scratch := make([]byte, 0, 256)
	out := q.AppendWire(scratch)
	if &out[0] == &q.wire[0] {
		t.Fatal("AppendWire aliased the packet's wire buffer")
	}
	if !bytes.Equal(out, q.wire) {
		t.Fatal("AppendWire output differs from wire")
	}
	// Reusing the scratch must not disturb a previously marshalled frame
	// once it has been copied out (ownership rule), but the append itself
	// must start at the scratch base.
	if cap(scratch) >= len(out) && &out[0] != &scratch[:1][0] {
		t.Fatal("AppendWire did not reuse the scratch buffer")
	}
}

func TestCloneKeepsFastPath(t *testing.T) {
	q, _ := testTCPFrame(t, []byte("clone me"))
	c := q.Clone()
	if c.wire == nil {
		t.Fatal("clone lost the wire buffer")
	}
	if &c.wire[0] == &q.wire[0] {
		t.Fatal("clone aliases the original wire buffer")
	}
	// Mutating the clone must not leak into the original's frame.
	c.IP.Src = MustParseAddr("10.7.7.7")
	c.TCP.Seq += 5
	cm := c.Marshal()
	if &cm[0] != &c.wire[0] {
		t.Fatal("clone did not keep the zero-copy fast path")
	}
	qm := q.Marshal()
	r := reparse(t, qm)
	if r.IP.Src == c.IP.Src || r.TCP.Seq == c.TCP.Seq {
		t.Fatal("clone mutation leaked into the original")
	}
}

func TestMarshalFastPathUDPZeroChecksum(t *testing.T) {
	// A UDP datagram carrying a zero (uncomputed) checksum must keep it
	// zero across an address patch.
	p := &Packet{
		Eth:     Ethernet{VLAN: 3, EtherType: EtherTypeIPv4},
		IP:      &IPv4{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2},
		UDP:     &UDP{SrcPort: 9, DstPort: 10},
		Payload: []byte("z"),
	}
	frame := p.Marshal()
	l3, ihl, ok := ipLayout(frame)
	if !ok {
		t.Fatal("bad frame")
	}
	seg := frame[l3+ihl:]
	seg[6], seg[7] = 0, 0 // pretend the sender skipped the checksum
	// Fix the IP header only (checksum untouched by UDP bytes).
	q, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	q.IP.Dst = MustParseAddr("10.0.0.99")
	out := q.Marshal()
	r := reparse(t, out)
	if r.IP.Dst != MustParseAddr("10.0.0.99") {
		t.Fatalf("dst = %v", r.IP.Dst)
	}
	l3, ihl, _ = ipLayout(out)
	if got := out[l3+ihl+6:][:2]; got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero UDP checksum was recomputed to % x", got)
	}
}
