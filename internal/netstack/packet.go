package netstack

import "fmt"

// Packet is a fully parsed frame: the Ethernet header plus whichever upper
// layers were present. The gateway mutates parsed packets (NAT rewrites,
// redirections, sequence bumping) and re-serialises them with Marshal.
type Packet struct {
	Eth     Ethernet
	ARP     *ARP
	IP      *IPv4
	TCP     *TCP
	UDP     *UDP
	Payload []byte // transport payload (TCP/UDP) or raw bytes for other protocols
}

// ParseFrame decodes a frame into its layers. Unknown EtherTypes and IP
// protocols leave the remaining bytes in Payload rather than failing, so
// taps and bridges can still forward what they do not understand.
func ParseFrame(b []byte) (*Packet, error) {
	p := &Packet{}
	rest, err := p.Eth.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	switch p.Eth.EtherType {
	case EtherTypeARP:
		p.ARP = &ARP{}
		if err := p.ARP.Unmarshal(rest); err != nil {
			return nil, err
		}
	case EtherTypeIPv4:
		p.IP = &IPv4{}
		rest, err = p.IP.Unmarshal(rest)
		if err != nil {
			return nil, err
		}
		switch p.IP.Protocol {
		case ProtoTCP:
			p.TCP = &TCP{}
			p.Payload, err = p.TCP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
			if err != nil {
				return nil, err
			}
		case ProtoUDP:
			p.UDP = &UDP{}
			p.Payload, err = p.UDP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
			if err != nil {
				return nil, err
			}
		default:
			p.Payload = rest
		}
	default:
		p.Payload = rest
	}
	return p, nil
}

// Marshal re-serialises the packet, recomputing lengths and checksums.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, 0, p.Eth.HeaderLen()+IPv4HeaderLen+TCPHeaderLen+len(p.Payload))
	buf = p.Eth.Marshal(buf)
	switch {
	case p.ARP != nil:
		buf = p.ARP.Marshal(buf)
	case p.IP != nil:
		var inner []byte
		switch {
		case p.TCP != nil:
			p.IP.Protocol = ProtoTCP
			inner = p.TCP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
		case p.UDP != nil:
			p.IP.Protocol = ProtoUDP
			inner = p.UDP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
		default:
			inner = p.Payload
		}
		buf = p.IP.Marshal(buf, inner)
	default:
		buf = append(buf, p.Payload...)
	}
	return buf
}

// Clone deep-copies the packet so a tap or queue can hold it while the
// original continues to be mutated.
func (p *Packet) Clone() *Packet {
	q := &Packet{Eth: p.Eth}
	if p.ARP != nil {
		a := *p.ARP
		q.ARP = &a
	}
	if p.IP != nil {
		ip := *p.IP
		q.IP = &ip
	}
	if p.TCP != nil {
		t := *p.TCP
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// FlowKey extracts the transport five-tuple plus VLAN. ok is false for
// non-TCP/UDP packets.
func (p *Packet) FlowKey() (FlowKey, bool) {
	if p.IP == nil {
		return FlowKey{}, false
	}
	k := FlowKey{VLAN: p.Eth.VLAN, SrcIP: p.IP.Src, DstIP: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	default:
		return FlowKey{}, false
	}
	return k, true
}

// String summarises the packet for logs.
func (p *Packet) String() string {
	switch {
	case p.ARP != nil:
		op := "request"
		if p.ARP.Op == ARPReply {
			op = "reply"
		}
		return fmt.Sprintf("ARP %s who-has %s tell %s (vlan %d)", op, p.ARP.TargetIP, p.ARP.SenderIP, p.Eth.VLAN)
	case p.TCP != nil:
		return fmt.Sprintf("TCP %s:%d > %s:%d [%s] seq=%d ack=%d len=%d (vlan %d)",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.Payload), p.Eth.VLAN)
	case p.UDP != nil:
		return fmt.Sprintf("UDP %s:%d > %s:%d len=%d (vlan %d)",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload), p.Eth.VLAN)
	case p.IP != nil:
		return fmt.Sprintf("IP %s > %s proto=%d len=%d (vlan %d)",
			p.IP.Src, p.IP.Dst, p.IP.Protocol, len(p.Payload), p.Eth.VLAN)
	default:
		return fmt.Sprintf("ETH %s > %s type=%#04x len=%d (vlan %d)",
			p.Eth.Src, p.Eth.Dst, p.Eth.EtherType, len(p.Payload), p.Eth.VLAN)
	}
}
