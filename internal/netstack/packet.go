package netstack

import (
	"encoding/binary"
	"fmt"
)

// Packet is a fully parsed frame: the Ethernet header plus whichever upper
// layers were present. The gateway mutates parsed packets (NAT rewrites,
// redirections, sequence bumping) and re-serialises them with Marshal.
//
// A packet produced by ParseFrame keeps a reference to the original wire
// buffer. As long as the packet's shape is unchanged — same layer
// structure, same payload bytes in the same position — Marshal patches the
// mutated header fields back into that buffer in place (with incremental
// checksum updates) instead of re-serialising, and Clone duplicates the
// packet with a single buffer copy. Payload bytes reached through Payload
// are read-only; replacing the Payload slice is allowed and simply falls
// back to the slow path. See DESIGN.md "Datapath buffer ownership".
type Packet struct {
	Eth     Ethernet
	ARP     *ARP
	IP      *IPv4
	TCP     *TCP
	UDP     *UDP
	Payload []byte // transport payload (TCP/UDP) or raw bytes for other protocols

	// Fast-path state: the original frame and its layer offsets.
	wire   []byte
	l3Off  int // ARP/IP header start
	l4Off  int // TCP/UDP header start; 0 when no transport layer was parsed
	payOff int // payload start within wire
	payLen int // payload length at parse time
}

// parseAlloc bundles a Packet with every header struct it might point at,
// so one parse (or clone) costs a single heap allocation no matter which
// layers are present. Unused members stay zero and unreferenced.
type parseAlloc struct {
	p   Packet
	arp ARP
	ip  IPv4
	tcp TCP
	udp UDP
}

// ParseFrame decodes a frame into its layers. Unknown EtherTypes and IP
// protocols leave the remaining bytes in Payload rather than failing, so
// taps and bridges can still forward what they do not understand.
//
// The frame buffer is retained for Marshal's zero-copy fast path: the
// caller relinquishes it to the packet.
func ParseFrame(b []byte) (*Packet, error) {
	a := &parseAlloc{}
	p := &a.p
	rest, err := p.Eth.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	p.l3Off = p.Eth.HeaderLen()
	switch p.Eth.EtherType {
	case EtherTypeARP:
		p.ARP = &a.arp
		if err := p.ARP.Unmarshal(rest); err != nil {
			return nil, err
		}
	case EtherTypeIPv4:
		p.IP = &a.ip
		rest, err = p.IP.Unmarshal(rest)
		if err != nil {
			return nil, err
		}
		ihl := int(b[p.l3Off]&0x0f) * 4
		switch p.IP.Protocol {
		case ProtoTCP:
			p.TCP = &a.tcp
			p.Payload, err = p.TCP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
			if err != nil {
				return nil, err
			}
			p.l4Off = p.l3Off + ihl
			p.payOff = p.l4Off + int(b[p.l4Off+12]>>4)*4
		case ProtoUDP:
			p.UDP = &a.udp
			p.Payload, err = p.UDP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
			if err != nil {
				return nil, err
			}
			p.l4Off = p.l3Off + ihl
			p.payOff = p.l4Off + UDPHeaderLen
		default:
			p.Payload = rest
			p.payOff = p.l3Off + ihl
		}
	default:
		p.Payload = rest
		p.payOff = p.l3Off
	}
	p.payLen = len(p.Payload)
	p.wire = b
	return p, nil
}

// payloadAliasesWire reports whether Payload still is the parse-time byte
// range of the wire buffer (same length, same backing position).
func (p *Packet) payloadAliasesWire() bool {
	if len(p.Payload) != p.payLen {
		return false
	}
	return p.payLen == 0 || &p.Payload[0] == &p.wire[p.payOff]
}

// syncWire patches mutated header fields back into the original frame
// buffer, maintaining checksums incrementally. It reports false — leaving
// the fast path unusable — when the packet changed shape: VLAN tag added
// or removed, layers added/dropped, or the payload replaced.
func (p *Packet) syncWire() bool {
	w := p.wire
	if w == nil {
		return false
	}
	tagged := p.l3Off == ethTaggedHdrLen
	if (p.Eth.VLAN != NoVLAN) != tagged {
		return false
	}
	if binary.BigEndian.Uint16(w[p.l3Off-2:]) != p.Eth.EtherType {
		return false // ARP <-> IP reshapes need the slow path
	}
	switch {
	case p.ARP != nil:
		if p.IP != nil || p.Eth.EtherType != EtherTypeARP {
			return false
		}
		var tmp [arpLen]byte
		copy(w[p.l3Off:p.l3Off+arpLen], p.ARP.Marshal(tmp[:0]))
	case p.IP != nil:
		if p.Eth.EtherType != EtherTypeIPv4 || !p.syncIP(w) {
			return false
		}
	default:
		if !p.payloadAliasesWire() {
			return false
		}
	}
	copy(w[0:6], p.Eth.Dst[:])
	copy(w[6:12], p.Eth.Src[:])
	if tagged {
		tci := uint16(p.Eth.Priority)<<13 | p.Eth.VLAN&vlanIDMask
		binary.BigEndian.PutUint16(w[14:16], tci)
	}
	return true
}

// syncIP patches the IP header (full 20-byte checksum recompute — it is
// cheap) and the transport header (incremental checksum) in place.
func (p *Packet) syncIP(w []byte) bool {
	hdr := w[p.l3Off:]
	switch {
	case p.TCP != nil:
		if p.l4Off == 0 || hdr[9] != ProtoTCP || p.UDP != nil {
			return false
		}
	case p.UDP != nil:
		if p.l4Off == 0 || hdr[9] != ProtoUDP {
			return false
		}
	default:
		if p.l4Off != 0 {
			return false
		}
	}
	if !p.payloadAliasesWire() {
		return false
	}
	ip := p.IP
	// Pseudo-header delta for the transport checksum.
	oldSrc := AddrFromSlice(hdr[12:16])
	oldDst := AddrFromSlice(hdr[16:20])
	var phDelta uint32
	if oldSrc != ip.Src {
		phDelta += csumDelta32(uint32(oldSrc), uint32(ip.Src))
	}
	if oldDst != ip.Dst {
		phDelta += csumDelta32(uint32(oldDst), uint32(ip.Dst))
	}
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	binary.BigEndian.PutUint32(hdr[12:16], uint32(ip.Src))
	binary.BigEndian.PutUint32(hdr[16:20], uint32(ip.Dst))
	// Length is structural (payload unchanged): wire stays authoritative.
	ip.Length = binary.BigEndian.Uint16(hdr[2:4])
	ihl := int(hdr[0]&0x0f) * 4
	binary.BigEndian.PutUint16(hdr[10:12], 0)
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr[:ihl], 0))
	switch {
	case p.TCP != nil:
		p.syncTCP(w[p.l4Off:], phDelta)
	case p.UDP != nil:
		p.syncUDP(w[p.l4Off:], phDelta)
	}
	return true
}

func (p *Packet) syncTCP(seg []byte, delta uint32) {
	t := p.TCP
	patch16 := func(off int, v uint16) {
		old := binary.BigEndian.Uint16(seg[off:])
		if old != v {
			delta += csumDelta16(old, v)
			binary.BigEndian.PutUint16(seg[off:], v)
		}
	}
	patch32 := func(off int, v uint32) {
		old := binary.BigEndian.Uint32(seg[off:])
		if old != v {
			delta += csumDelta32(old, v)
			binary.BigEndian.PutUint32(seg[off:], v)
		}
	}
	patch16(0, t.SrcPort)
	patch16(2, t.DstPort)
	patch32(4, t.Seq)
	patch32(8, t.Ack)
	if seg[13] != t.Flags {
		old := uint16(seg[12])<<8 | uint16(seg[13])
		seg[13] = t.Flags
		delta += csumDelta16(old, uint16(seg[12])<<8|uint16(t.Flags))
	}
	patch16(14, t.Window)
	patch16(18, t.Urgent)
	csumApply(seg[16:18], delta)
}

func (p *Packet) syncUDP(seg []byte, delta uint32) {
	u := p.UDP
	hasSum := binary.BigEndian.Uint16(seg[6:8]) != 0
	patch16 := func(off int, v uint16) {
		old := binary.BigEndian.Uint16(seg[off:])
		if old != v {
			delta += csumDelta16(old, v)
			binary.BigEndian.PutUint16(seg[off:], v)
		}
	}
	patch16(0, u.SrcPort)
	patch16(2, u.DstPort)
	u.Length = binary.BigEndian.Uint16(seg[4:6])
	if !hasSum {
		return // RFC 768: zero checksum means "not computed"; keep it so
	}
	csumApply(seg[6:8], delta)
	if binary.BigEndian.Uint16(seg[6:8]) == 0 {
		binary.BigEndian.PutUint16(seg[6:8], 0xffff)
	}
}

// Marshal re-serialises the packet, recomputing lengths and checksums.
// Fast path: a packet from ParseFrame whose shape is unchanged returns its
// patched original buffer without allocating. The result then aliases the
// packet's buffer — marshalling is the packet's terminal use, after which
// neither may be mutated (netsim.Port.Send copies; Port.SendOwned takes
// the buffer as-is).
func (p *Packet) Marshal() []byte {
	if p.syncWire() {
		return p.wire
	}
	return p.marshalSlow(nil)
}

// AppendWire appends the packet's wire encoding to dst, using the fast
// path when available. Unlike Marshal the result never aliases the
// packet's buffer, so dst may be a reused scratch buffer.
func (p *Packet) AppendWire(dst []byte) []byte {
	if p.syncWire() {
		return append(dst, p.wire...)
	}
	return p.marshalSlow(dst)
}

func (p *Packet) marshalSlow(buf []byte) []byte {
	if buf == nil {
		buf = make([]byte, 0, p.Eth.HeaderLen()+IPv4HeaderLen+TCPHeaderLen+len(p.Payload))
	}
	buf = p.Eth.Marshal(buf)
	switch {
	case p.ARP != nil:
		buf = p.ARP.Marshal(buf)
	case p.IP != nil:
		var inner []byte
		switch {
		case p.TCP != nil:
			p.IP.Protocol = ProtoTCP
			inner = p.TCP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
		case p.UDP != nil:
			p.IP.Protocol = ProtoUDP
			inner = p.UDP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
		default:
			inner = p.Payload
		}
		buf = p.IP.Marshal(buf, inner)
	default:
		buf = append(buf, p.Payload...)
	}
	return buf
}

// Clone deep-copies the packet so a tap or queue can hold it while the
// original continues to be mutated. When the original still carries its
// wire buffer, the clone costs a single buffer copy and keeps the
// zero-copy Marshal fast path.
func (p *Packet) Clone() *Packet {
	a := &parseAlloc{p: Packet{Eth: p.Eth}}
	q := &a.p
	if p.ARP != nil {
		a.arp = *p.ARP
		q.ARP = &a.arp
	}
	if p.IP != nil {
		a.ip = *p.IP
		q.IP = &a.ip
	}
	if p.TCP != nil {
		a.tcp = *p.TCP
		q.TCP = &a.tcp
	}
	if p.UDP != nil {
		a.udp = *p.UDP
		q.UDP = &a.udp
	}
	switch {
	case p.wire != nil && p.payloadAliasesWire():
		q.wire = append([]byte(nil), p.wire...)
		q.l3Off, q.l4Off, q.payOff, q.payLen = p.l3Off, p.l4Off, p.payOff, p.payLen
		if p.Payload != nil {
			q.Payload = q.wire[p.payOff : p.payOff+p.payLen : p.payOff+p.payLen]
		}
	case p.Payload != nil:
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

// FlowKey extracts the transport five-tuple plus VLAN. ok is false for
// non-TCP/UDP packets.
func (p *Packet) FlowKey() (FlowKey, bool) {
	if p.IP == nil {
		return FlowKey{}, false
	}
	k := FlowKey{VLAN: p.Eth.VLAN, SrcIP: p.IP.Src, DstIP: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	default:
		return FlowKey{}, false
	}
	return k, true
}

// String summarises the packet for logs.
func (p *Packet) String() string {
	switch {
	case p.ARP != nil:
		op := "request"
		if p.ARP.Op == ARPReply {
			op = "reply"
		}
		return fmt.Sprintf("ARP %s who-has %s tell %s (vlan %d)", op, p.ARP.TargetIP, p.ARP.SenderIP, p.Eth.VLAN)
	case p.TCP != nil:
		return fmt.Sprintf("TCP %s:%d > %s:%d [%s] seq=%d ack=%d len=%d (vlan %d)",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			FlagString(p.TCP.Flags), p.TCP.Seq, p.TCP.Ack, len(p.Payload), p.Eth.VLAN)
	case p.UDP != nil:
		return fmt.Sprintf("UDP %s:%d > %s:%d len=%d (vlan %d)",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload), p.Eth.VLAN)
	case p.IP != nil:
		return fmt.Sprintf("IP %s > %s proto=%d len=%d (vlan %d)",
			p.IP.Src, p.IP.Dst, p.IP.Protocol, len(p.Payload), p.Eth.VLAN)
	default:
		return fmt.Sprintf("ETH %s > %s type=%#04x len=%d (vlan %d)",
			p.Eth.Src, p.Eth.Dst, p.Eth.EtherType, len(p.Payload), p.Eth.VLAN)
	}
}
