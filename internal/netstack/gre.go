package netstack

import (
	"encoding/binary"
	"fmt"
)

// ProtoGRE is the IP protocol number for GRE (RFC 2784).
const ProtoGRE = 47

// GREHeaderLen is the basic GRE header size (no optional fields).
const GREHeaderLen = 4

// GREEncap wraps an inner IPv4 packet (header + payload bytes) in a basic
// GRE header. GQ's §7.2 growth path tunnels additional routable address
// space from other networks over GRE.
func GREEncap(inner []byte) []byte {
	out := make([]byte, 0, GREHeaderLen+len(inner))
	out = binary.BigEndian.AppendUint16(out, 0) // flags + version 0
	out = binary.BigEndian.AppendUint16(out, EtherTypeIPv4)
	return append(out, inner...)
}

// GREDecap validates the header and returns the inner packet bytes.
func GREDecap(b []byte) ([]byte, error) {
	if len(b) < GREHeaderLen {
		return nil, fmt.Errorf("netstack: GRE header truncated (%d bytes)", len(b))
	}
	if flags := binary.BigEndian.Uint16(b[0:2]); flags != 0 {
		return nil, fmt.Errorf("netstack: unsupported GRE flags %#04x", flags)
	}
	if proto := binary.BigEndian.Uint16(b[2:4]); proto != EtherTypeIPv4 {
		return nil, fmt.Errorf("netstack: unsupported GRE payload protocol %#04x", proto)
	}
	return b[GREHeaderLen:], nil
}

// MarshalIPPacket serialises an IP packet (IP + transport layers of p)
// without the Ethernet header — the GRE inner representation.
func MarshalIPPacket(p *Packet) []byte {
	if p.IP == nil {
		return nil
	}
	var inner []byte
	switch {
	case p.TCP != nil:
		p.IP.Protocol = ProtoTCP
		inner = p.TCP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
	case p.UDP != nil:
		p.IP.Protocol = ProtoUDP
		inner = p.UDP.Marshal(nil, p.IP.Src, p.IP.Dst, p.Payload)
	default:
		inner = p.Payload
	}
	return p.IP.Marshal(nil, inner)
}

// ParseIPPacket decodes a bare IP packet (no Ethernet) into a Packet with
// a zeroed Ethernet header.
func ParseIPPacket(b []byte) (*Packet, error) {
	p := &Packet{Eth: Ethernet{EtherType: EtherTypeIPv4}}
	p.IP = &IPv4{}
	rest, err := p.IP.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	switch p.IP.Protocol {
	case ProtoTCP:
		p.TCP = &TCP{}
		p.Payload, err = p.TCP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
	case ProtoUDP:
		p.UDP = &UDP{}
		p.Payload, err = p.UDP.Unmarshal(rest, p.IP.Src, p.IP.Dst)
	default:
		p.Payload = rest
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}
