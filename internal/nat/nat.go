// Package nat implements the gateway's network address translation (§5.3).
// All inmates live in RFC 1918 space; the packet forwarder maps source
// addresses of inside→outside flows to configurable global address space,
// one global address per inmate (bindings are learned dynamically from the
// inmates' boot-time chatter). Depending on configuration, outside→inside
// flows are either dropped (emulating typical home-user setups) or
// forwarded with destination rewriting (providing Internet-reachable
// servers, as Storm's relay proxies require).
package nat

import (
	"fmt"
	"sort"

	"gq/internal/netstack"
)

// Mode selects inbound handling.
type Mode int

const (
	// DropInbound discards unsolicited outside→inside flows.
	DropInbound Mode = iota
	// ForwardInbound rewrites inbound destinations to the bound internal
	// address, making the inmate externally reachable.
	ForwardInbound
)

// Binding is a live internal↔global association for one inmate.
type Binding struct {
	VLAN     uint16
	Internal netstack.Addr
	Global   netstack.Addr
	MAC      netstack.MAC
}

type globalPool struct {
	prefix netstack.Prefix
	next   int
}

// Table is a subfarm's NAT state.
type Table struct {
	mode  Mode
	pools []globalPool

	byVLAN     map[uint16]*Binding
	byInternal map[netstack.Addr]*Binding
	byGlobal   map[netstack.Addr]*Binding
	modeByVLAN map[uint16]Mode

	// Translated counts rewritten packets per direction.
	TranslatedOut, TranslatedIn, DroppedIn uint64
}

// NewTable creates a table drawing global addresses from pool (the first
// poolStart host indices are reserved for farm infrastructure).
func NewTable(pool netstack.Prefix, poolStart int, mode Mode) *Table {
	return &Table{
		mode:       mode,
		pools:      []globalPool{{prefix: pool, next: poolStart}},
		byVLAN:     make(map[uint16]*Binding),
		byInternal: make(map[netstack.Addr]*Binding),
		byGlobal:   make(map[netstack.Addr]*Binding),
		modeByVLAN: make(map[uint16]Mode),
	}
}

// AddPool grafts additional global address space onto the table — §7.2's
// growth path for when the farm burns through its allocations ("we may opt
// to use GRE tunnels in order to connect additional routable address space
// available in other networks").
func (t *Table) AddPool(pool netstack.Prefix, start int) {
	t.pools = append(t.pools, globalPool{prefix: pool, next: start})
}

// OwnsGlobal reports whether addr falls inside any of the table's pools.
func (t *Table) OwnsGlobal(addr netstack.Addr) bool {
	for _, p := range t.pools {
		if p.prefix.Contains(addr) {
			return true
		}
	}
	return false
}

// SetVLANMode overrides the inbound mode for one inmate, e.g. making only
// the Storm proxies reachable.
func (t *Table) SetVLANMode(vlan uint16, m Mode) { t.modeByVLAN[vlan] = m }

func (t *Table) inboundMode(vlan uint16) Mode {
	if m, ok := t.modeByVLAN[vlan]; ok {
		return m
	}
	return t.mode
}

// Learn records (or refreshes) the binding for an inmate's internal address,
// allocating a global address on first sight. It returns nil when the
// global pool is exhausted.
func (t *Table) Learn(vlan uint16, internal netstack.Addr, mac netstack.MAC) *Binding {
	if b, ok := t.byVLAN[vlan]; ok {
		if b.Internal != internal {
			// Inmate re-addressed (revert + fresh DHCP lease): rebind.
			delete(t.byInternal, b.Internal)
			b.Internal = internal
			t.byInternal[internal] = b
		}
		b.MAC = mac
		return b
	}
	var g netstack.Addr
	allocated := false
	for i := range t.pools {
		if t.pools[i].next < t.pools[i].prefix.Size()-1 {
			g = t.pools[i].prefix.Nth(t.pools[i].next)
			t.pools[i].next++
			allocated = true
			break
		}
	}
	if !allocated {
		return nil
	}
	b := &Binding{VLAN: vlan, Internal: internal, Global: g, MAC: mac}
	t.byVLAN[vlan] = b
	t.byInternal[internal] = b
	t.byGlobal[g] = b
	return b
}

// Release frees an inmate's binding (inmate expiry). The global address is
// deliberately not recycled: GQ "burns through" global space rather than
// reuse possibly-blacklisted addresses.
func (t *Table) Release(vlan uint16) {
	b, ok := t.byVLAN[vlan]
	if !ok {
		return
	}
	delete(t.byVLAN, vlan)
	delete(t.byInternal, b.Internal)
	delete(t.byGlobal, b.Global)
}

// ByVLAN returns the binding for an inmate.
func (t *Table) ByVLAN(vlan uint16) *Binding { return t.byVLAN[vlan] }

// ByInternal returns the binding for an internal address.
func (t *Table) ByInternal(a netstack.Addr) *Binding { return t.byInternal[a] }

// ByGlobal returns the binding for a global address.
func (t *Table) ByGlobal(a netstack.Addr) *Binding { return t.byGlobal[a] }

// Bindings returns all bindings ordered by VLAN, for reports.
func (t *Table) Bindings() []*Binding {
	out := make([]*Binding, 0, len(t.byVLAN))
	for _, b := range t.byVLAN {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VLAN < out[j].VLAN })
	return out
}

// Outbound rewrites the source of an inside→outside packet to the inmate's
// global address. The packet's VLAN identifies the inmate. It returns false
// if no binding exists and none can be learned.
func (t *Table) Outbound(p *netstack.Packet) bool {
	b := t.Learn(p.Eth.VLAN, p.IP.Src, p.Eth.Src)
	if b == nil {
		return false
	}
	p.IP.Src = b.Global
	t.TranslatedOut++
	return true
}

// Inbound rewrites the destination of an outside→inside packet to the
// inmate's internal address and returns its binding; nil means drop
// (unknown global address, or home-user mode).
func (t *Table) Inbound(p *netstack.Packet) *Binding {
	b, ok := t.byGlobal[p.IP.Dst]
	if !ok || t.inboundMode(b.VLAN) != ForwardInbound {
		t.DroppedIn++
		return nil
	}
	p.IP.Dst = b.Internal
	t.TranslatedIn++
	return b
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("nat.Table{%d bindings, %d pools, primary %s}",
		len(t.byVLAN), len(t.pools), t.pools[0].prefix)
}
