package nat

import (
	"testing"
	"testing/quick"

	"gq/internal/netstack"
)

func table(mode Mode) *Table {
	return NewTable(netstack.MustParsePrefix("192.0.2.0/24"), 16, mode)
}

func outPkt(vlan uint16, src, dst netstack.Addr) *netstack.Packet {
	return &netstack.Packet{
		Eth: netstack.Ethernet{VLAN: vlan, Src: netstack.MAC{2, 0, 0, 0, 0, byte(vlan)}},
		IP:  &netstack.IPv4{Src: src, Dst: dst, TTL: 64, Protocol: netstack.ProtoTCP},
		TCP: &netstack.TCP{SrcPort: 1234, DstPort: 80},
	}
}

func TestLearnAllocatesSequentially(t *testing.T) {
	tb := table(DropInbound)
	b1 := tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), netstack.MAC{2, 0, 0, 0, 0, 7})
	b2 := tb.Learn(8, netstack.MustParseAddr("10.0.0.24"), netstack.MAC{2, 0, 0, 0, 0, 8})
	if b1.Global != netstack.MustParseAddr("192.0.2.16") || b2.Global != netstack.MustParseAddr("192.0.2.17") {
		t.Fatalf("globals %v %v", b1.Global, b2.Global)
	}
	// Same VLAN again: stable binding.
	b1b := tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), b1.MAC)
	if b1b != b1 {
		t.Fatal("binding not stable")
	}
}

func TestRebindAfterRevert(t *testing.T) {
	tb := table(DropInbound)
	b := tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), netstack.MAC{})
	g := b.Global
	// Inmate reverted and got a different lease.
	b2 := tb.Learn(7, netstack.MustParseAddr("10.0.0.55"), netstack.MAC{})
	if b2.Global != g {
		t.Fatal("global address changed on rebind")
	}
	if tb.ByInternal(netstack.MustParseAddr("10.0.0.23")) != nil {
		t.Fatal("stale internal mapping")
	}
	if tb.ByInternal(netstack.MustParseAddr("10.0.0.55")) != b2 {
		t.Fatal("new internal mapping missing")
	}
}

func TestOutboundRewrite(t *testing.T) {
	tb := table(DropInbound)
	p := outPkt(7, netstack.MustParseAddr("10.0.0.23"), netstack.MustParseAddr("203.0.113.5"))
	if !tb.Outbound(p) {
		t.Fatal("outbound failed")
	}
	if p.IP.Src != netstack.MustParseAddr("192.0.2.16") {
		t.Fatalf("src %v", p.IP.Src)
	}
	if p.IP.Dst != netstack.MustParseAddr("203.0.113.5") {
		t.Fatal("dst changed")
	}
	if tb.TranslatedOut != 1 {
		t.Error("counter")
	}
}

func TestInboundDropMode(t *testing.T) {
	tb := table(DropInbound)
	tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), netstack.MAC{})
	p := outPkt(0, netstack.MustParseAddr("203.0.113.5"), netstack.MustParseAddr("192.0.2.16"))
	if tb.Inbound(p) != nil {
		t.Fatal("home-user mode forwarded inbound")
	}
	if tb.DroppedIn != 1 {
		t.Error("drop not counted")
	}
}

func TestInboundForwardMode(t *testing.T) {
	tb := table(ForwardInbound)
	tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), netstack.MAC{})
	p := outPkt(0, netstack.MustParseAddr("203.0.113.5"), netstack.MustParseAddr("192.0.2.16"))
	b := tb.Inbound(p)
	if b == nil || b.VLAN != 7 {
		t.Fatal("inbound not forwarded")
	}
	if p.IP.Dst != netstack.MustParseAddr("10.0.0.23") {
		t.Fatalf("dst %v", p.IP.Dst)
	}
}

func TestPerVLANModeOverride(t *testing.T) {
	// Farm default home-user; Storm proxy on VLAN 9 must be reachable.
	tb := table(DropInbound)
	tb.Learn(9, netstack.MustParseAddr("10.0.0.30"), netstack.MAC{})
	tb.SetVLANMode(9, ForwardInbound)
	p := outPkt(0, netstack.MustParseAddr("203.0.113.5"), netstack.MustParseAddr("192.0.2.16"))
	if tb.Inbound(p) == nil {
		t.Fatal("override not applied")
	}
}

func TestInboundUnknownGlobal(t *testing.T) {
	tb := table(ForwardInbound)
	p := outPkt(0, 1, netstack.MustParseAddr("192.0.2.200"))
	if tb.Inbound(p) != nil {
		t.Fatal("unknown global forwarded")
	}
}

func TestReleaseDoesNotRecycle(t *testing.T) {
	tb := table(DropInbound)
	b := tb.Learn(7, netstack.MustParseAddr("10.0.0.23"), netstack.MAC{})
	g := b.Global
	tb.Release(7)
	if tb.ByVLAN(7) != nil || tb.ByGlobal(g) != nil {
		t.Fatal("release incomplete")
	}
	b2 := tb.Learn(8, netstack.MustParseAddr("10.0.0.24"), netstack.MAC{})
	if b2.Global == g {
		t.Fatal("blacklist-prone global address recycled")
	}
}

func TestPoolExhaustion(t *testing.T) {
	tb := NewTable(netstack.MustParsePrefix("192.0.2.0/29"), 5, DropInbound)
	// indices 5,6 available (7 broadcast).
	if tb.Learn(1, 100, netstack.MAC{}) == nil || tb.Learn(2, 101, netstack.MAC{}) == nil {
		t.Fatal("allocation failed early")
	}
	if tb.Learn(3, 102, netstack.MAC{}) != nil {
		t.Fatal("exhausted pool still allocated")
	}
}

func TestBindingsSorted(t *testing.T) {
	tb := table(DropInbound)
	for _, v := range []uint16{9, 3, 7} {
		tb.Learn(v, netstack.Addr(v), netstack.MAC{})
	}
	bs := tb.Bindings()
	if len(bs) != 3 || bs[0].VLAN != 3 || bs[1].VLAN != 7 || bs[2].VLAN != 9 {
		t.Fatalf("order %v", bs)
	}
}

// Property: forward then reverse translation restores the original header
// (NAT invariant from DESIGN.md §5).
func TestPropertyRoundTrip(t *testing.T) {
	f := func(vlan uint16, internal uint32, dst uint32) bool {
		vlan = vlan%4000 + 1
		tb := NewTable(netstack.MustParsePrefix("192.0.2.0/24"), 1, ForwardInbound)
		out := outPkt(vlan, netstack.Addr(internal), netstack.Addr(dst))
		if !tb.Outbound(out) {
			return false
		}
		// Reply: src=dst of out, dst=global.
		in := outPkt(0, netstack.Addr(dst), out.IP.Src)
		b := tb.Inbound(in)
		return b != nil && in.IP.Dst == netstack.Addr(internal) && b.VLAN == vlan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: global addresses are never double-assigned.
func TestPropertyInjective(t *testing.T) {
	f := func(vlans []uint16) bool {
		tb := table(DropInbound)
		seen := map[netstack.Addr]uint16{}
		for i, v := range vlans {
			v = v%4000 + 1
			b := tb.Learn(v, netstack.Addr(i+1), netstack.MAC{})
			if b == nil {
				continue
			}
			if owner, dup := seen[b.Global]; dup && owner != v {
				return false
			}
			seen[b.Global] = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
