package containment

import (
	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/shim"
)

// Session is one REWRITE-contained flow from the containment server's
// perspective: the client leg (via the gateway's redirection, carrying the
// shims) and an optional server leg (dialled through the gateway's nonce
// port, Fig. 5). A handler rewrites content between the two; the
// destination need not exist — the server can simply impersonate one by
// creating response traffic as needed (the auto-infection HTTP server is
// implemented exactly this way, §6.6).
type Session struct {
	Req *shim.Request

	server  *Server
	client  *host.Conn
	srv     *host.Conn
	handler StreamHandler
	started bool

	// stalled marks a session whose verdict answer is deliberately delayed
	// (fault injection); client bytes arriving meanwhile buffer in stallBuf
	// so content control sees them once the answer goes out.
	stalled  bool
	stallBuf []byte

	clientClosed, serverClosed bool

	// udpReply, when set, makes WriteClient answer a datagram flow.
	udpReply func([]byte)
}

// start decides the flow's verdict and, normally, answers at once. Under an
// injected verdict stall the decision is made immediately (triggers still
// observe the flow) but the answer is scheduled for later; bytes the client
// sends meanwhile buffer until then.
func (sess *Session) start(req *shim.Request, extra []byte) {
	s := sess.server
	sess.Req = req
	sess.started = true
	dec, policy := s.decide(req, netstack.ProtoTCP)
	if d := s.verdictStall; d > 0 {
		sess.stalled = true
		sess.stallBuf = append([]byte(nil), extra...)
		s.Host.Sim().Schedule(d, func() {
			buf := sess.stallBuf
			sess.stallBuf = nil
			sess.stalled = false
			sess.finishStart(dec, policy, buf)
		})
		return
	}
	sess.finishStart(dec, policy, extra)
}

// finishStart answers the request shim with the verdict and, for rewrite
// verdicts, begins content control. If the gateway already reaped the flow
// (stall outlasted the await-verdict timeout) the client connection is
// closed and the Write is a silent no-op: no unaccounted shim hits the wire.
func (sess *Session) finishStart(dec Decision, policy string, extra []byte) {
	req := sess.Req
	resp := &shim.Response{
		OrigIP: req.OrigIP, RespIP: dec.RespIP,
		OrigPort: req.OrigPort, RespPort: dec.RespPort,
		Verdict: dec.Verdict, PolicyName: policy, Annotation: dec.Annotation,
	}
	sess.client.Write(resp.Marshal())

	if !dec.Verdict.Has(shim.Rewrite) {
		// Endpoint-control verdicts: the gateway takes over and will cut
		// this leg; nothing further to do.
		return
	}
	sess.handler = dec.Handler
	if sess.handler == nil {
		// A rewrite verdict without a handler cannot contain; close.
		sess.client.Close()
		return
	}
	if len(extra) > 0 {
		sess.clientData(extra)
	}
}

func (sess *Session) clientData(data []byte) {
	if sess.stalled {
		sess.stallBuf = append(sess.stallBuf, data...)
		return
	}
	if sess.handler != nil {
		sess.handler.OnClientData(sess, data)
	}
}

// WriteClient sends bytes to the flow initiator (impersonating the
// original destination; the gateway strips nothing after the shim).
func (sess *Session) WriteClient(b []byte) {
	if sess.udpReply != nil {
		sess.udpReply(b)
		return
	}
	if sess.client != nil {
		sess.client.Write(b)
	}
}

// CloseClient half-closes the initiator leg.
func (sess *Session) CloseClient() {
	if sess.client != nil {
		sess.client.Close()
	}
}

// AbortClient resets the initiator leg — content control can "terminate a
// flow when it would normally still continue".
func (sess *Session) AbortClient() {
	if sess.client != nil {
		sess.client.Abort()
	}
}

// ServerOpen reports whether the leg to the actual responder is up.
func (sess *Session) ServerOpen() bool { return sess.srv != nil && !sess.serverClosed }

// DialServer opens the leg to the actual responder through the gateway's
// nonce port. Idempotent.
func (sess *Session) DialServer() {
	if sess.srv != nil || sess.udpReply != nil {
		return
	}
	c := sess.server.Host.Dial(sess.server.NonceIP, sess.Req.NoncePort)
	sess.srv = c
	c.OnData = func(data []byte) {
		if sess.handler != nil {
			sess.handler.OnServerData(sess, data)
		}
	}
	c.OnPeerClose = func() {
		sess.serverClosed = true
		if sess.handler != nil {
			sess.handler.OnServerClose(sess)
		}
		c.Close()
	}
	c.OnClose = func(err error) {
		if !sess.serverClosed {
			sess.serverClosed = true
			if sess.handler != nil {
				sess.handler.OnServerClose(sess)
			}
		}
	}
}

// WriteServer sends bytes toward the actual responder, dialling the leg
// first if needed.
func (sess *Session) WriteServer(b []byte) {
	sess.DialServer()
	if sess.srv != nil {
		sess.srv.Write(b)
	}
}

// CloseServer half-closes the responder leg.
func (sess *Session) CloseServer() {
	if sess.srv != nil {
		sess.srv.Close()
	}
}
