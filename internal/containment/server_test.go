package containment

import (
	"testing"

	"gq/internal/shim"
)

type namedDecider struct{ name string }

func (d *namedDecider) Name() string                  { return d.name }
func (d *namedDecider) Decide(*shim.Request) Decision { return Decision{} }

// TestSwapPolicy pins the runtime-swap semantics the ops plane relies on:
// an exact-range match is replaced in place (keeping dispatch order), and
// a new range is prepended so it shadows any overlapping earlier rule —
// deciderFor returns the first match.
func TestSwapPolicy(t *testing.T) {
	s := &Server{}
	s.AddPolicy(16, 17, &namedDecider{"rustock"})
	s.AddPolicy(18, 19, &namedDecider{"grum"})
	s.SetFallback(&namedDecider{"deny"})

	name := func(vlan uint16) string { return s.deciderFor(vlan).Name() }

	// In-place replacement of an exact range.
	s.SwapPolicy(16, 17, &namedDecider{"harddeny"})
	if got := name(16); got != "harddeny" {
		t.Fatalf("vlan 16 dispatches to %s after exact swap", got)
	}
	if got := name(18); got != "grum" {
		t.Fatalf("vlan 18 dispatches to %s; other ranges must be untouched", got)
	}
	if len(s.policies) != 2 {
		t.Fatalf("exact swap grew the table to %d ranges", len(s.policies))
	}

	// A non-exact overlapping range is prepended and shadows.
	s.SwapPolicy(18, 18, &namedDecider{"allow"})
	if got := name(18); got != "allow" {
		t.Fatalf("vlan 18 dispatches to %s after overlapping swap", got)
	}
	if got := name(19); got != "grum" {
		t.Fatalf("vlan 19 dispatches to %s; uncovered part of the old range must survive", got)
	}
	if got := name(40); got != "deny" {
		t.Fatalf("vlan 40 dispatches to %s, want fallback", got)
	}
}
