package containment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/shim"
	"gq/internal/sim"
)

// Trigger is an activity trigger (§5.4, Fig. 6): a flow pattern, a time
// window, a comparison against a flow count, and a life-cycle action. A
// typical policy — "revert and reinfect the inmate once the containment
// server has observed no outbound activity for 30 minutes" — is written
//
//	*:25/tcp / 30min < 1 -> revert
//
// and a flood guard — "terminate an inmate sending a particular recipient
// more than a certain number of connection requests per minute" — as
//
//	*:25/tcp / 1min > 600 -> terminate
type Trigger struct {
	HostPat   string // "*", "*.*.*.*", or a literal IPv4 address
	Port      uint16 // 0 matches any port
	Proto     uint8  // netstack.ProtoTCP / ProtoUDP; 0 matches any
	Window    time.Duration
	LessThan  bool // true: fire when count < Threshold; false: count > Threshold
	Threshold int
	Action    string // revert | reboot | terminate
}

// ParseTrigger parses the Fig. 6 trigger syntax.
func ParseTrigger(s string) (*Trigger, error) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return nil, fmt.Errorf("containment: trigger %q missing '->'", s)
	}
	action := strings.TrimSpace(s[arrow+2:])
	switch action {
	case "revert", "reboot", "terminate":
	default:
		return nil, fmt.Errorf("containment: unknown trigger action %q", action)
	}
	lhs := strings.TrimSpace(s[:arrow])
	parts := strings.Split(lhs, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("containment: trigger %q wants pattern/proto / window cmp n", s)
	}
	hostPort := strings.TrimSpace(parts[0])
	colon := strings.LastIndex(hostPort, ":")
	if colon < 0 {
		return nil, fmt.Errorf("containment: trigger pattern %q missing port", hostPort)
	}
	t := &Trigger{HostPat: strings.TrimSpace(hostPort[:colon]), Action: action}
	portStr := strings.TrimSpace(hostPort[colon+1:])
	if portStr != "*" {
		p, err := strconv.Atoi(portStr)
		if err != nil || p < 0 || p > 65535 {
			return nil, fmt.Errorf("containment: bad trigger port %q", portStr)
		}
		t.Port = uint16(p)
	}
	switch proto := strings.TrimSpace(parts[1]); proto {
	case "tcp":
		t.Proto = netstack.ProtoTCP
	case "udp":
		t.Proto = netstack.ProtoUDP
	case "*":
		t.Proto = 0
	default:
		return nil, fmt.Errorf("containment: bad trigger protocol %q", proto)
	}
	cond := strings.Fields(strings.TrimSpace(parts[2]))
	if len(cond) != 3 {
		return nil, fmt.Errorf("containment: bad trigger condition %q", parts[2])
	}
	w, err := ParseWindow(cond[0])
	if err != nil {
		return nil, err
	}
	t.Window = w
	switch cond[1] {
	case "<":
		t.LessThan = true
	case ">":
		t.LessThan = false
	default:
		return nil, fmt.Errorf("containment: bad trigger comparator %q", cond[1])
	}
	n, err := strconv.Atoi(cond[2])
	if err != nil {
		return nil, fmt.Errorf("containment: bad trigger threshold %q", cond[2])
	}
	t.Threshold = n
	return t, nil
}

// ParseWindow parses "30min", "1h", "90s".
func ParseWindow(s string) (time.Duration, error) {
	for _, suffix := range []struct {
		str string
		d   time.Duration
	}{{"min", time.Minute}, {"h", time.Hour}, {"s", time.Second}, {"m", time.Minute}} {
		if strings.HasSuffix(s, suffix.str) {
			n, err := strconv.Atoi(strings.TrimSuffix(s, suffix.str))
			if err != nil || n < 0 {
				return 0, fmt.Errorf("containment: bad window %q", s)
			}
			return time.Duration(n) * suffix.d, nil
		}
	}
	return 0, fmt.Errorf("containment: bad window %q", s)
}

// Matches reports whether a flow event matches the trigger pattern.
func (t *Trigger) Matches(dst netstack.Addr, port uint16, proto uint8) bool {
	if t.Proto != 0 && proto != t.Proto {
		return false
	}
	if t.Port != 0 && port != t.Port {
		return false
	}
	switch t.HostPat {
	case "*", "*.*.*.*":
		return true
	default:
		a, err := netstack.ParseAddr(t.HostPat)
		return err == nil && a == dst
	}
}

// String renders the trigger back in config syntax.
func (t *Trigger) String() string {
	port := "*"
	if t.Port != 0 {
		port = strconv.Itoa(int(t.Port))
	}
	proto := "*"
	if t.Proto != 0 {
		proto = netstack.ProtoName(t.Proto)
	}
	cmp := ">"
	if t.LessThan {
		cmp = "<"
	}
	return fmt.Sprintf("%s:%s/%s / %dmin %s %d -> %s",
		t.HostPat, port, proto, int(t.Window.Minutes()), cmp, t.Threshold, t.Action)
}

// TriggerEngine evaluates triggers over per-inmate flow-event histories.
type TriggerEngine struct {
	sim  *sim.Simulator
	emit func(action string, vlan uint16)

	rules  []vlanTrigger
	events map[uint16][]flowEvent // per VLAN
	// lastFired dampens refiring: a rule stays quiet for one window after
	// firing (the inmate is being reverted; give it time to come back).
	lastFired map[ruleKey]time.Duration

	// Fired records actions taken, for tests and reports.
	Fired []FiredTrigger

	// sc, when set, journals each firing and dumps the scope's flight
	// recorder so the events leading up to the trigger are preserved.
	sc         *obs.Scope
	firedCount *obs.Counter
}

// FiredTrigger records one trigger activation.
type FiredTrigger struct {
	VLAN   uint16
	Rule   string
	Action string
	At     time.Duration
}

type vlanTrigger struct {
	lo, hi uint16
	t      *Trigger
}

type ruleKey struct {
	vlan uint16
	idx  int
}

type flowEvent struct {
	at    time.Duration
	dst   netstack.Addr
	port  uint16
	proto uint8
}

// NewTriggerEngine creates the engine; it evaluates rules once per minute.
// emit receives fired actions (the server wires it to the life-cycle sink).
func NewTriggerEngine(s *sim.Simulator, emit func(action string, vlan uint16)) *TriggerEngine {
	e := &TriggerEngine{
		sim: s, emit: emit,
		events:    make(map[uint16][]flowEvent),
		lastFired: make(map[ruleKey]time.Duration),
	}
	s.Every(time.Minute, e.evaluate)
	return e
}

// SetScope wires the engine to a journal scope (typically the subfarm's):
// firings are journalled as policy.trigger_fired, counted under
// cs.triggers_fired, and snapshot the scope's flight recorder.
func (e *TriggerEngine) SetScope(sc *obs.Scope) {
	e.sc = sc
	e.firedCount = e.sim.Obs().Reg.Counter("cs.triggers_fired")
}

// AddRule applies a trigger to an inclusive VLAN range.
func (e *TriggerEngine) AddRule(lo, hi uint16, t *Trigger) {
	e.rules = append(e.rules, vlanTrigger{lo, hi, t})
}

// Observe records a flow event (called by the server on every decision).
func (e *TriggerEngine) Observe(req *shim.Request, proto uint8) {
	e.ObserveFlow(req.VLAN, req.RespIP, req.RespPort, proto)
}

// ObserveFlow records a flow event with an explicit protocol.
func (e *TriggerEngine) ObserveFlow(vlan uint16, dst netstack.Addr, port uint16, proto uint8) {
	e.events[vlan] = append(e.events[vlan], flowEvent{
		at: e.sim.Now(), dst: dst, port: port, proto: proto,
	})
}

func (e *TriggerEngine) evaluate() {
	now := e.sim.Now()
	// Absence rules must also fire for inmates that produced no events at
	// all; ensure every covered VLAN has an (empty) history entry.
	for _, r := range e.rules {
		if !r.t.LessThan {
			continue
		}
		for vlan := r.lo; vlan <= r.hi; vlan++ {
			if _, ok := e.events[vlan]; !ok {
				e.events[vlan] = nil
			}
		}
	}
	// Find the largest window to bound history trimming.
	var maxWin time.Duration
	for _, r := range e.rules {
		if r.t.Window > maxWin {
			maxWin = r.t.Window
		}
	}
	// Walk VLANs in order: firings journal and cross-post lifecycle actions,
	// so map iteration order here would leak into the event stream and break
	// replay determinism whenever several VLANs co-fire in one evaluation.
	vlans := make([]int, 0, len(e.events))
	for vlan := range e.events {
		vlans = append(vlans, int(vlan))
	}
	sort.Ints(vlans)
	for _, v := range vlans {
		vlan := uint16(v)
		evs := e.events[vlan]
		// Trim history older than the largest window.
		cut := 0
		for cut < len(evs) && now-evs[cut].at > maxWin {
			cut++
		}
		evs = evs[cut:]
		e.events[vlan] = evs

		for idx, r := range e.rules {
			if vlan < r.lo || vlan > r.hi {
				continue
			}
			key := ruleKey{vlan, idx}
			if last, ok := e.lastFired[key]; ok && now-last < r.t.Window {
				continue
			}
			count := 0
			for _, ev := range evs {
				if now-ev.at <= r.t.Window && r.t.Matches(ev.dst, ev.port, ev.proto) {
					count++
				}
			}
			fire := false
			if r.t.LessThan {
				// Absence rules only make sense once a full window of
				// observation has elapsed.
				if now >= r.t.Window {
					fire = count < r.t.Threshold
				}
			} else {
				fire = count > r.t.Threshold
			}
			if fire {
				e.lastFired[key] = now
				ft := FiredTrigger{
					VLAN: vlan, Rule: r.t.String(), Action: r.t.Action, At: now,
				}
				e.Fired = append(e.Fired, ft)
				if e.sc != nil {
					e.firedCount.Inc()
					e.sc.Emit(obs.Event{
						Type: obs.EvTriggerFired, VLAN: vlan, Detail: ft.Action,
					})
					// A trigger is the farm saying "something is off": keep
					// the events that led here for the post-mortem.
					e.sc.Dump("trigger fired: " + ft.Rule)
				}
				if e.emit != nil {
					e.emit(r.t.Action, vlan)
				}
			}
		}
	}
}
