package containment

import (
	"testing"
	"time"

	"gq/internal/netstack"
	"gq/internal/sim"
)

func TestParseTriggerFig6(t *testing.T) {
	// The exact rule from the paper's Fig. 6.
	tr, err := ParseTrigger("*:25/tcp / 30min < 1 -> revert")
	if err != nil {
		t.Fatal(err)
	}
	if tr.HostPat != "*" || tr.Port != 25 || tr.Proto != netstack.ProtoTCP {
		t.Fatalf("pattern %+v", tr)
	}
	if tr.Window != 30*time.Minute || !tr.LessThan || tr.Threshold != 1 || tr.Action != "revert" {
		t.Fatalf("condition %+v", tr)
	}
	if tr.String() != "*:25/tcp / 30min < 1 -> revert" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestParseTriggerVariants(t *testing.T) {
	good := []string{
		"*.*.*.*:25/tcp / 30min < 1 -> revert",
		"198.51.100.7:80/tcp / 1min > 600 -> terminate",
		"*:*/udp / 1h > 10000 -> reboot",
		"*:53/* / 5min > 100 -> reboot",
	}
	for _, s := range good {
		if _, err := ParseTrigger(s); err != nil {
			t.Errorf("ParseTrigger(%q) = %v", s, err)
		}
	}
	bad := []string{
		"",
		"*:25/tcp / 30min < 1",            // no action
		"*:25/tcp / 30min < 1 -> explode", // bad action
		"*:25/tcp 30min < 1 -> revert",    // missing separators
		"*:25/xxx / 30min < 1 -> revert",  // bad proto
		"*:25/tcp / 30min = 1 -> revert",  // bad comparator
		"*:25/tcp / 30min < x -> revert",  // bad threshold
		"*:25/tcp / 30parsec < 1 -> revert",
		"*:999999/tcp / 30min < 1 -> revert",
		"*/tcp / 30min < 1 -> revert", // missing port
	}
	for _, s := range bad {
		if _, err := ParseTrigger(s); err == nil {
			t.Errorf("ParseTrigger(%q) accepted", s)
		}
	}
}

func TestParseWindow(t *testing.T) {
	cases := map[string]time.Duration{
		"30min": 30 * time.Minute,
		"2h":    2 * time.Hour,
		"90s":   90 * time.Second,
		"5m":    5 * time.Minute,
	}
	for in, want := range cases {
		got, err := ParseWindow(in)
		if err != nil || got != want {
			t.Errorf("ParseWindow(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseWindow("fortnight"); err == nil {
		t.Error("bad window accepted")
	}
}

func TestTriggerMatches(t *testing.T) {
	tr, _ := ParseTrigger("198.51.100.7:25/tcp / 1min > 5 -> terminate")
	addr := netstack.MustParseAddr("198.51.100.7")
	if !tr.Matches(addr, 25, netstack.ProtoTCP) {
		t.Error("exact match failed")
	}
	if tr.Matches(addr, 25, netstack.ProtoUDP) {
		t.Error("proto mismatch matched")
	}
	if tr.Matches(addr, 80, netstack.ProtoTCP) {
		t.Error("port mismatch matched")
	}
	if tr.Matches(addr+1, 25, netstack.ProtoTCP) {
		t.Error("host mismatch matched")
	}
	wild, _ := ParseTrigger("*.*.*.*:*/* / 1min > 5 -> reboot")
	if !wild.Matches(addr, 9999, netstack.ProtoUDP) {
		t.Error("wildcard failed")
	}
}

type firedAction struct {
	action string
	vlan   uint16
}

func engine(t *testing.T) (*sim.Simulator, *TriggerEngine, *[]firedAction) {
	t.Helper()
	s := sim.New(1)
	var fired []firedAction
	e := NewTriggerEngine(s, func(action string, vlan uint16) {
		fired = append(fired, firedAction{action, vlan})
	})
	return s, e, &fired
}

func TestAbsenceTriggerFires(t *testing.T) {
	// "Restart the bot once it has ceased spamming for more than 30 min."
	s, e, fired := engine(t)
	tr, _ := ParseTrigger("*:25/tcp / 30min < 1 -> revert")
	e.AddRule(16, 19, tr)

	// VLAN 16 spams steadily; VLAN 17 goes quiet after 5 minutes.
	dst := netstack.MustParseAddr("198.51.100.25")
	spam16 := s.Every(time.Minute, func() {
		e.ObserveFlow(16, dst, 25, netstack.ProtoTCP)
	})
	defer spam16.Stop()
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Minute, func() {
			e.ObserveFlow(17, dst, 25, netstack.ProtoTCP)
		})
	}
	s.RunFor(40 * time.Minute)

	var v16, v17, v18 int
	for _, f := range *fired {
		switch f.vlan {
		case 16:
			v16++
		case 17:
			v17++
		case 18:
			v18++
		}
		if f.action != "revert" {
			t.Errorf("action %q", f.action)
		}
	}
	if v16 != 0 {
		t.Errorf("active inmate reverted %d times", v16)
	}
	if v17 == 0 {
		t.Error("quiet inmate never reverted")
	}
	if v18 == 0 {
		t.Error("always-silent inmate (VLAN 18) never reverted")
	}
}

func TestFloodTriggerFires(t *testing.T) {
	// "Terminate an inmate sending a particular recipient more than N
	// connection requests per minute."
	s, e, fired := engine(t)
	tr, _ := ParseTrigger("*:25/tcp / 1min > 10 -> terminate")
	e.AddRule(16, 16, tr)
	dst := netstack.MustParseAddr("203.0.113.25")
	for i := 0; i < 50; i++ {
		e.ObserveFlow(16, dst, 25, netstack.ProtoTCP)
	}
	s.RunFor(90 * time.Second)
	if len(*fired) != 1 || (*fired)[0].action != "terminate" {
		t.Fatalf("fired %v", *fired)
	}
}

func TestTriggerDampening(t *testing.T) {
	// A fired absence rule stays quiet for one window so the revert can
	// take effect.
	s, e, fired := engine(t)
	tr, _ := ParseTrigger("*:25/tcp / 5min < 1 -> revert")
	e.AddRule(16, 16, tr)
	s.RunFor(21 * time.Minute)
	// Without dampening this would fire ~16 times (every minute after the
	// first window); with one-window dampening about 4 times.
	if n := len(*fired); n < 2 || n > 6 {
		t.Fatalf("fired %d times in 21min, want ~4 with dampening", n)
	}
}

func TestTriggerWindowSlides(t *testing.T) {
	// Events age out of the window.
	s, e, fired := engine(t)
	tr, _ := ParseTrigger("*:80/tcp / 2min > 3 -> terminate")
	e.AddRule(10, 10, tr)
	dst := netstack.MustParseAddr("203.0.113.80")
	// 4 events spread over 10 minutes never co-occur in a 2-minute window.
	for i := 0; i < 4; i++ {
		i := i
		s.Schedule(time.Duration(i*3)*time.Minute, func() {
			e.ObserveFlow(10, dst, 80, netstack.ProtoTCP)
		})
	}
	s.RunFor(15 * time.Minute)
	if len(*fired) != 0 {
		t.Fatalf("sliding window leaked: fired %v", *fired)
	}
}
