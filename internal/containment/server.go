// Package containment implements GQ's containment server (§5.4, §6.2): the
// explicit, scalable decision point that determines each flow's containment
// policy. The server is an ordinary application server on a farm host; the
// combination of the gateway's packet router and this server realises a
// transparent application-layer proxy for all traffic entering and leaving
// the inmate network.
//
// The server also controls the inmates' life-cycle: because it witnesses
// all network-level activity of an inmate, it reacts to the presence — and
// absence — of network events using activity triggers, issuing terminate/
// reboot/revert actions to the inmate controller over the management
// network.
package containment

import (
	"fmt"
	"time"

	"gq/internal/host"
	"gq/internal/netstack"
	"gq/internal/obs"
	"gq/internal/shim"
)

// Decision is a policy's verdict for one flow.
type Decision struct {
	Verdict shim.Verdict
	// RespIP/RespPort name the resulting responder endpoint (REDIRECT and
	// REFLECT targets). Zero means "the original destination".
	RespIP   netstack.Addr
	RespPort uint16
	// Annotation clarifies the context of the verdict for reports.
	Annotation string
	// Handler performs content control for REWRITE verdicts.
	Handler StreamHandler
}

// Decider is a containment policy: it issues endpoint-control verdicts from
// the flow four-tuple carried in the request shim. Content control is
// expressed through the Decision's Handler. Policies are codified as types
// and instantiated per VLAN range (§6.2 "policy structure").
type Decider interface {
	Name() string
	Decide(req *shim.Request) Decision
}

// StreamHandler performs content control on a REWRITE-contained flow. All
// methods run inside simulator events and must not block.
type StreamHandler interface {
	// OnClientData receives successive chunks of the initiator's stream.
	OnClientData(s *Session, data []byte)
	// OnServerData receives chunks from the actual responder once the
	// handler has opened the server leg with s.WriteServer/DialServer.
	OnServerData(s *Session, data []byte)
	// OnClientClose fires when the initiator half closes or resets.
	OnClientClose(s *Session)
	// OnServerClose fires when the responder half closes or resets.
	OnServerClose(s *Session)
}

// Server is the containment server application.
type Server struct {
	// Host is the server's inmate-network presence.
	Host *host.Host
	// NonceIP is the gateway address dialled for leg-2 connections.
	NonceIP netstack.Addr
	Port    uint16

	policies  []policyRange
	fallback  Decider
	triggers  *TriggerEngine
	lifecycle LifecycleSink
	udpSock   *host.UDPSock

	// FlowsSeen counts containment requests handled; DecisionLog records
	// them in order.
	FlowsSeen   uint64
	DecisionLog []LoggedDecision

	// flowsSeen is the farm-wide cs.flows_seen counter (shared across
	// cluster members, since they serve one logical decision point).
	flowsSeen *obs.Counter

	// verdictStall delays the response shim after deciding, simulating an
	// overloaded or wedged decision point (fault injection). The decision
	// itself — policy evaluation and trigger observation — still happens
	// immediately; only the answer is late.
	verdictStall time.Duration
}

// LoggedDecision records one containment decision for reporting.
type LoggedDecision struct {
	Req      shim.Request
	Verdict  shim.Verdict
	Policy   string
	Annotate string
}

type policyRange struct {
	lo, hi uint16
	d      Decider
}

// LifecycleSink receives life-cycle action lines destined for the inmate
// controller (e.g. "ACTION revert VLAN 16"). The farm wires this to a
// management-network connection.
type LifecycleSink func(line string)

// NewServer creates a containment server on h listening at port.
func NewServer(h *host.Host, port uint16, nonceIP netstack.Addr) (*Server, error) {
	s := &Server{Host: h, NonceIP: nonceIP, Port: port}
	s.flowsSeen = h.Sim().Obs().Reg.Counter("cs.flows_seen")
	s.triggers = NewTriggerEngine(h.Sim(), s.EmitLifecycle)
	if err := h.Listen(port, s.acceptTCP); err != nil {
		return nil, err
	}
	sock, err := h.ListenUDP(port, s.handleUDP)
	if err != nil {
		return nil, err
	}
	s.udpSock = sock
	return s, nil
}

// Rebind re-registers the server's TCP and UDP listeners after its host was
// reset (crash/restart injection). Policies, triggers, and the decision log
// survive — only the network bindings are rebuilt.
func (s *Server) Rebind() error {
	if err := s.Host.Listen(s.Port, s.acceptTCP); err != nil {
		return err
	}
	sock, err := s.Host.ListenUDP(s.Port, s.handleUDP)
	if err != nil {
		return err
	}
	s.udpSock = sock
	return nil
}

// SetVerdictStall makes the server sit on each verdict for d before
// answering (0 restores normal operation). Used by fault injection to
// exercise the gateway's await-verdict timeout path.
func (s *Server) SetVerdictStall(d time.Duration) { s.verdictStall = d }

// SetLifecycleSink wires life-cycle actions to the inmate controller.
func (s *Server) SetLifecycleSink(fn LifecycleSink) { s.lifecycle = fn }

// Triggers exposes the activity-trigger engine.
func (s *Server) Triggers() *TriggerEngine { return s.triggers }

// AddPolicy applies a decider to an inclusive VLAN ID range.
func (s *Server) AddPolicy(lo, hi uint16, d Decider) {
	s.policies = append(s.policies, policyRange{lo, hi, d})
}

// SwapPolicy replaces the decider for an existing [lo,hi] range in place,
// or — if no exact range match exists — prepends the new range so it wins
// over any overlapping earlier assignment (deciderFor returns the first
// match). Called mid-run by the ops plane; must run on the sim goroutine.
func (s *Server) SwapPolicy(lo, hi uint16, d Decider) {
	for i, pr := range s.policies {
		if pr.lo == lo && pr.hi == hi {
			s.policies[i].d = d
			return
		}
	}
	s.policies = append([]policyRange{{lo, hi, d}}, s.policies...)
}

// SetFallback sets the decider for VLANs with no explicit assignment
// (DefaultDeny in any sane configuration).
func (s *Server) SetFallback(d Decider) { s.fallback = d }

// deciderFor resolves the policy for a VLAN.
func (s *Server) deciderFor(vlan uint16) Decider {
	for _, pr := range s.policies {
		if vlan >= pr.lo && vlan <= pr.hi {
			return pr.d
		}
	}
	return s.fallback
}

// EmitLifecycle sends an action line to the inmate controller.
func (s *Server) EmitLifecycle(action string, vlan uint16) {
	if s.lifecycle != nil {
		s.lifecycle(fmt.Sprintf("ACTION %s VLAN %d", action, vlan))
	}
}

// decide runs policy for a request and records the decision.
func (s *Server) decide(req *shim.Request, proto uint8) (Decision, string) {
	s.FlowsSeen++
	s.flowsSeen.Inc()
	d := s.deciderFor(req.VLAN)
	if d == nil {
		dec := Decision{Verdict: shim.Drop, Annotation: "no policy assigned"}
		s.log(req, dec, "Unassigned")
		return dec, "Unassigned"
	}
	dec := d.Decide(req)
	if dec.Verdict == 0 {
		dec.Verdict = shim.Drop
	}
	s.log(req, dec, d.Name())
	s.triggers.Observe(req, proto)
	return dec, d.Name()
}

func (s *Server) log(req *shim.Request, dec Decision, policy string) {
	s.DecisionLog = append(s.DecisionLog, LoggedDecision{
		Req: *req, Verdict: dec.Verdict, Policy: policy, Annotate: dec.Annotation,
	})
}

// acceptTCP handles a redirected flow: read the request shim, decide,
// answer with the response shim, then run content control if required.
func (s *Server) acceptTCP(c *host.Conn) {
	sess := &Session{server: s, client: c}
	var buf []byte
	c.OnData = func(data []byte) {
		if sess.started {
			sess.clientData(data)
			return
		}
		buf = append(buf, data...)
		if len(buf) < shim.RequestLen {
			return
		}
		req, err := shim.UnmarshalRequest(buf[:shim.RequestLen])
		if err != nil {
			c.Abort()
			return
		}
		rest := buf[shim.RequestLen:]
		buf = nil
		sess.start(req, rest)
	}
	c.OnPeerClose = func() {
		if sess.started && sess.handler != nil {
			sess.handler.OnClientClose(sess)
		}
		c.Close()
	}
	c.OnClose = func(err error) {
		if sess.started && sess.handler != nil && !sess.clientClosed {
			sess.clientClosed = true
			sess.handler.OnClientClose(sess)
		}
	}
}

// handleUDP handles shim-padded datagrams.
func (s *Server) handleUDP(src netstack.Addr, srcPort uint16, data []byte) {
	// Supervisor heartbeats are echoed immediately, even under a verdict
	// stall: a stalled server is slow, not dead, and must not be marked
	// down. A crashed host never reaches this handler at all.
	if hb, err := shim.UnmarshalHeartbeat(data); err == nil {
		s.sendUDP(src, srcPort, hb.Marshal())
		return
	}
	req, err := shim.UnmarshalRequest(data[:min(len(data), shim.RequestLen)])
	if err != nil {
		return
	}
	payload := data[shim.RequestLen:]
	dec, policy := s.decide(req, netstack.ProtoUDP)
	answer := func() {
		resp := &shim.Response{
			OrigIP: req.OrigIP, RespIP: dec.RespIP, OrigPort: req.OrigPort, RespPort: dec.RespPort,
			Verdict: dec.Verdict, PolicyName: policy, Annotation: dec.Annotation,
		}
		out := resp.Marshal()
		if dec.Verdict.Has(shim.Rewrite) && dec.Handler != nil {
			// Impersonation for datagram protocols: the handler produces the
			// reply payload synchronously via a one-shot session.
			sess := &Session{server: s, udpReply: func(b []byte) {
				reply := append(resp.Marshal(), b...)
				s.sendUDP(src, srcPort, reply)
			}}
			sess.started = true
			sess.handler = dec.Handler
			s.sendUDP(src, srcPort, out)
			dec.Handler.OnClientData(sess, payload)
			return
		}
		s.sendUDP(src, srcPort, out)
	}
	if d := s.verdictStall; d > 0 {
		s.Host.Sim().Schedule(d, answer)
		return
	}
	answer()
}

func (s *Server) sendUDP(dst netstack.Addr, dstPort uint16, data []byte) {
	s.udpSock.SendTo(dst, dstPort, data)
}
